//! Micro-benchmarks of the live observability plane: record-path cost
//! (sketch + window + SLO tallies per completion) and a hard
//! zero-allocation check over a full served run with the plane, its
//! sliding windows, and the metrics endpoint all attached.
//!
//! Run with `cargo bench --bench obsv`. The allocation check exits
//! non-zero if the plane's hot path ever touches the heap, so CI can
//! use this bench as a regression gate. Plane *construction*
//! (preallocated ring, sketches, event buffer) may allocate; feeding it
//! may not. The endpoint is attached but not scraped during the
//! measured region (scrapes are off the hot path by design and allocate
//! freely while rendering).

use oram_bench::{bench, CountingAlloc};
use oram_obsv::{http_get, FlightConfig, LiveConfig, LivePlane, MetricsServer};
use oram_service::{SchedPolicy, ServiceConfig, ServiceSim};
use oram_sim::{Engine, SystemConfig};
use oram_util::ServeClass;
use std::hint::black_box;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn engine() -> Engine {
    let mut e = Engine::new(SystemConfig::small_test()).expect("valid config");
    e.prefill_working_set(512);
    e
}

fn plane_record_throughput() {
    println!("-- plane record path (sketch + window + SLO tallies) --");
    let plane = LivePlane::shared(LiveConfig::for_serve(4, 1, 1_000, 100));
    let mut g = plane.lock().expect("plane lock");
    let mut i = 0u64;
    let r = bench("plane_record/request_complete", 20, 10_000, || {
        use oram_util::LiveObserver;
        i += 937;
        g.request_complete(i, (i % 4) as u32, 0, ServeClass::DramReal, 500 + i % 4_000, false);
        black_box(i)
    });
    println!("{r}");
}

/// The zero-allocation claim for the tentpole: a full generated service
/// run with the live plane fed from both sides (engine telemetry tee
/// target + service completion observer), the flight recorder attached
/// (its rings capture every span, window, and service event on the hot
/// path), and the metrics endpoint bound must perform **zero**
/// allocator calls after setup.
fn live_plane_allocation_check() -> bool {
    println!("-- live plane steady-state allocation check --");
    let mut ok = true;
    for policy in SchedPolicy::ALL {
        // Warm the engine off the books, as the service bench does.
        let mut eng = engine();
        let mut i = 0u64;
        for step in 0..4000u64 {
            i = (i + 17) % 512;
            black_box(eng.serve_request(i, step.is_multiple_of(5), 0));
        }

        // Construction preallocates the window ring, the sketches, the
        // bounded event buffer, and the flight recorder's four rings —
        // allowed to allocate. Recording into them is not.
        let plane = LivePlane::shared(LiveConfig::for_serve(4, 1, 400, 100));
        plane.lock().expect("plane lock").attach_flight(FlightConfig::default());
        eng.attach_telemetry(LivePlane::as_sink(&plane), 50_000);
        let mut cfg = ServiceConfig::symmetric_open(4, 2_500, 400.0, 512, 11);
        cfg.scheduler = policy;
        let mut sim = ServiceSim::new(cfg, eng).expect("valid config");
        sim.attach_live(LivePlane::as_live(&plane));
        // Endpoint attached (accept thread parked) but not scraped
        // inside the measured region. Probe /healthz before snapshotting
        // the counter so the accept thread's startup allocations cannot
        // race into the measured region on a busy box.
        let server = MetricsServer::start("127.0.0.1:0", plane.clone()).expect("bind");
        let (status, _) = http_get(server.local_addr(), "/healthz").expect("probe");
        assert!(status.contains("200"), "{status}");

        let before = ALLOC.allocations();
        sim.run();
        {
            let mut p = plane.lock().expect("plane lock");
            p.flush();
        }
        let delta = ALLOC.allocations() - before;

        let (res, _) = sim.finish();
        assert_eq!(res.completed() + res.rejected(), 10_000, "{}", policy.name());
        {
            let p = plane.lock().expect("plane lock");
            p.validate_conservation().expect("plane conserves");
            assert_eq!(p.total().completed, res.completed(), "{}", policy.name());
        }
        // A post-run scrape still answers (render allocates — that is
        // fine, it is outside the measured region).
        let (status, body) = http_get(server.local_addr(), "/metrics").expect("scrape");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("oram_requests_completed_total"), "{body}");
        server.shutdown();

        let verdict = if delta == 0 { "OK" } else { "FAIL" };
        println!(
            "live_plane_allocs/{:<12} {delta:>6} allocs in 10k requests  [{verdict}]",
            policy.name()
        );
        ok &= delta == 0;
    }
    ok
}

fn main() {
    plane_record_throughput();
    if !live_plane_allocation_check() {
        eprintln!("live plane hot path allocated — zero-allocation regression");
        std::process::exit(1);
    }
}

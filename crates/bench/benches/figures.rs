//! End-to-end figure benchmarks: times one reduced-size figure experiment
//! per family, so `cargo bench` exercises the whole reproduction pipeline
//! (`repro <figN>` runs the full versions).

use criterion::{criterion_group, criterion_main, Criterion};
use oram_bench::experiments as exp;
use oram_bench::ExpOptions;
use std::hint::black_box;

fn micro_opts() -> ExpOptions {
    ExpOptions { misses: 200, warmup: 50, levels: 10, seed: 3 }
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    let opts = micro_opts();
    g.bench_function("fig8_family", |b| {
        b.iter(|| black_box(exp::fig8_13(&opts, false)))
    });
    g.bench_function("fig11_family", |b| {
        b.iter(|| black_box(exp::fig11_15(&opts, false)))
    });
    g.bench_function("fig16", |b| b.iter(|| black_box(exp::fig16(&opts))));
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);

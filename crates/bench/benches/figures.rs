//! End-to-end figure benchmarks: times one reduced-size figure experiment
//! per family, so `cargo bench` exercises the whole reproduction pipeline
//! (`repro <figN>` runs the full versions), and reports the parallel
//! sweep's speedup over the sequential one.

use oram_bench::experiments as exp;
use oram_bench::{bench, ExpOptions, Table};
use std::hint::black_box;

fn micro_opts() -> ExpOptions {
    ExpOptions { misses: 200, warmup: 50, levels: 10, seed: 3, threads: 1, progress: false }
}

type FigureFn = fn(&ExpOptions) -> Table;

fn main() {
    let opts = micro_opts();
    let figures: [(&str, FigureFn); 3] = [
        ("fig8_family", |o| exp::fig8_13(o, false)),
        ("fig11_family", |o| exp::fig11_15(o, false)),
        ("fig16", exp::fig16),
    ];
    for (name, f) in figures {
        let seq = bench(&format!("figures/{name}/threads=1"), 5, 1, || {
            black_box(f(&opts.with_threads(1)))
        });
        println!("{seq}");
        let threads = oram_sim::default_threads().max(2);
        let par = bench(&format!("figures/{name}/threads={threads}"), 5, 1, || {
            black_box(f(&opts.with_threads(threads)))
        });
        println!("{par}");
        println!(
            "figures/{name}: parallel speedup {:.2}x ({} threads)",
            seq.median_ns / par.median_ns.max(1.0),
            threads
        );
    }
}

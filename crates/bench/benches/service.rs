//! Micro-benchmarks of the service front-end: request round-trip cost
//! through admission + scheduling + coalescing into the engine, and a
//! hard zero-allocation check over the steady-state service issue path.
//!
//! Run with `cargo bench --bench service`. The allocation check exits
//! non-zero if the service-driven steady state ever touches the heap,
//! so CI can use this bench as a regression gate. Per-request *setup*
//! (queue and sample buffers sized at construction) may allocate; the
//! admission/schedule/coalesce/issue loop may not.

use oram_bench::{bench, CountingAlloc};
use oram_service::{SchedPolicy, ServiceConfig, ServiceSim, ShardedServiceSim};
use oram_sim::{Engine, ShardedOram, SystemConfig};
use std::hint::black_box;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn engine() -> Engine {
    let mut e = Engine::new(SystemConfig::small_test()).expect("valid config");
    e.prefill_working_set(512);
    e
}

fn service_roundtrip() {
    println!("-- service round-trip (admission + schedule + ORAM access) --");
    for policy in SchedPolicy::ALL {
        let mut cfg = ServiceConfig::symmetric_open(4, 0, 1_000.0, 512, 11);
        cfg.scheduler = policy;
        let mut sim = ServiceSim::new(cfg, engine()).expect("valid config");
        let mut i = 0u64;
        let r = bench(&format!("service_roundtrip/{}", policy.name()), 20, 2000, || {
            i = (i + 17) % 512;
            sim.inject((i % 4) as usize, i, i.is_multiple_of(5));
            while sim.step() {}
            black_box(i)
        });
        println!("{r}");
    }
}

/// The zero-allocation claim, extended through the service layer: with
/// the engine warmed to its high-water marks and the service buffers
/// sized at construction, a full generated run — Poisson admission,
/// Zipfian draws, scheduling, MSHR coalescing, and the ORAM accesses
/// themselves — must perform **zero** allocator calls.
fn steady_state_allocation_check() -> bool {
    println!("-- service steady-state allocation check --");
    let mut ok = true;
    for policy in SchedPolicy::ALL {
        // Warm the engine off the books: DRAM queues, stash, and
        // duplication structures grow to their steady-state capacity.
        let mut eng = engine();
        let mut i = 0u64;
        for step in 0..4000u64 {
            i = (i + 17) % 512;
            black_box(eng.serve_request(i, step.is_multiple_of(5), 0));
        }

        let mut cfg = ServiceConfig::symmetric_open(4, 2_500, 400.0, 512, 11);
        cfg.scheduler = policy;
        // Construction preallocates queues, waiter scratch, and latency
        // buffers — allowed to allocate.
        let mut sim = ServiceSim::new(cfg, eng).expect("valid config");
        let before = ALLOC.allocations();
        sim.run();
        let delta = ALLOC.allocations() - before;
        let (res, _) = sim.finish();
        assert_eq!(res.completed() + res.rejected(), 10_000, "{}", policy.name());
        let verdict = if delta == 0 { "OK" } else { "FAIL" };
        println!(
            "service_steady_allocs/{:<12} {delta:>6} allocs in 10k requests  [{verdict}]",
            policy.name()
        );
        ok &= delta == 0;
    }
    ok
}

/// The same claim through the sharded dispatch path: with every shard
/// engine warmed and the dispatch buffers sized at construction, a full
/// generated run over a 4-shard backend (partitioning, per-shard
/// sub-batching, outcome scatter) must perform **zero** allocator calls
/// at one worker thread. (Multi-thread serving allocates per-shard
/// result buffers by design; the gate pins the single-thread path.)
fn sharded_steady_state_allocation_check() -> bool {
    println!("-- sharded service steady-state allocation check (4 shards) --");
    let mut ok = true;
    for policy in SchedPolicy::ALL {
        // Warm every shard off the books: (i + 17) % 512 cycles all
        // residues mod 4, so each shard's DRAM queues, stash, and
        // duplication structures reach steady-state capacity.
        let mut backend =
            ShardedOram::new(SystemConfig::small_test(), 4, 1).expect("valid config");
        backend.prefill_working_set(512);
        let mut i = 0u64;
        for step in 0..8000u64 {
            i = (i + 17) % 512;
            black_box(backend.serve_request(i, step.is_multiple_of(5), 0));
        }

        let mut cfg = ServiceConfig::symmetric_open(4, 2_500, 400.0, 512, 11);
        cfg.scheduler = policy;
        let mut sim = ShardedServiceSim::new(cfg, backend).expect("valid config");
        let before = ALLOC.allocations();
        sim.run();
        let delta = ALLOC.allocations() - before;
        let (res, _) = sim.finish();
        assert_eq!(res.completed() + res.rejected(), 10_000, "{}", policy.name());
        let verdict = if delta == 0 { "OK" } else { "FAIL" };
        println!(
            "sharded_steady_allocs/{:<12} {delta:>6} allocs in 10k requests  [{verdict}]",
            policy.name()
        );
        ok &= delta == 0;
    }
    ok
}

fn main() {
    service_roundtrip();
    let mut ok = steady_state_allocation_check();
    ok &= sharded_steady_state_allocation_check();
    if !ok {
        eprintln!("service steady-state issue path allocated — zero-allocation regression");
        std::process::exit(1);
    }
}

//! Micro-benchmarks of the ORAM protocol layer: controller access
//! throughput per duplication policy, stash primitives — and a hard
//! zero-allocation check over the steady-state access loop.
//!
//! Run with `cargo bench --bench protocol`. The allocation check exits
//! non-zero if the hot loop ever touches the heap again, so CI can use
//! this bench as a regression gate.

use oram_bench::{bench, CountingAlloc};
use oram_protocol::{
    Block, BlockAddr, DupPolicy, LeafLabel, OramConfig, OramController, PosMapSelect, Request,
    Stash,
};
use std::hint::black_box;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

const POLICIES: [(&str, DupPolicy); 4] = [
    ("tiny", DupPolicy::Off),
    ("rd_dup", DupPolicy::RdOnly),
    ("hd_dup", DupPolicy::HdOnly),
    ("dynamic3", DupPolicy::Dynamic { counter_bits: 3 }),
];

fn controller_access() {
    println!("-- controller access throughput --");
    for (name, policy) in POLICIES {
        let cfg = OramConfig::small_test().with_levels(10).with_dup_policy(policy);
        let mut ctl = OramController::new(cfg).unwrap();
        ctl.prefill((0..400u64).map(|i| (BlockAddr::new(i), i)));
        let mut i = 0u64;
        let r = bench(&format!("controller_access/{name}"), 20, 2000, || {
            i = (i + 17) % 400;
            black_box(ctl.access(Request::read(BlockAddr::new(i))))
        });
        println!("{r}");
    }
}

fn stash_ops() {
    println!("-- stash primitives --");
    let mut stash = Stash::new(256);
    let mut i = 0u64;
    let r = bench("stash/insert_lookup_evict", 20, 10_000, || {
        i += 1;
        let addr = BlockAddr::new(i % 512);
        stash.insert(Block::real(addr, LeafLabel::new(i % 64), i, 0));
        black_box(stash.lookup(addr));
        if stash.occupied() > 200 {
            stash.mark_evicted(addr);
        }
    });
    println!("{r}");
}

fn eviction_path() {
    println!("-- access with evictions, L=12 --");
    let cfg = OramConfig::small_test().with_levels(12).with_dup_policy(DupPolicy::RdOnly);
    let mut ctl = OramController::new(cfg).unwrap();
    ctl.prefill((0..1500u64).map(|i| (BlockAddr::new(i), i)));
    let mut i = 0u64;
    let r = bench("eviction/access_with_eviction_L12", 20, 2000, || {
        i = (i + 31) % 1500;
        black_box(ctl.access(Request::read(BlockAddr::new(i))))
    });
    println!("{r}");
}

/// The zero-allocation claim, checked: after warmup (position map grown
/// to the working set, duplication queues at their high-water capacity),
/// a sustained mixed read/write/dummy loop must perform **zero**
/// allocator calls under every duplication policy.
fn steady_state_allocation_check() -> bool {
    println!("-- steady-state allocation check --");
    let mut ok = true;
    for (name, policy) in POLICIES {
        let cfg = OramConfig::small_test().with_levels(10).with_dup_policy(policy);
        let mut ctl = OramController::new(cfg).unwrap();
        ctl.prefill((0..400u64).map(|i| (BlockAddr::new(i), i)));
        // Warmup: touch the whole working set, fire plenty of evictions.
        let mut i = 0u64;
        for _ in 0..4000 {
            i = (i + 17) % 400;
            black_box(ctl.access(Request::read(BlockAddr::new(i))));
        }
        let before = ALLOC.allocations();
        for step in 0..10_000u64 {
            i = (i + 17) % 400;
            match step % 5 {
                0 => black_box(ctl.access(Request::write(BlockAddr::new(i), step))),
                4 => black_box(ctl.dummy_access()),
                _ => black_box(ctl.access(Request::read(BlockAddr::new(i)))),
            };
        }
        let delta = ALLOC.allocations() - before;
        let verdict = if delta == 0 { "OK" } else { "FAIL" };
        println!("steady_state_allocs/{name:<10} {delta:>6} allocs in 10k accesses  [{verdict}]");
        ok &= delta == 0;
    }
    ok
}

/// The recursive position map keeps the zero-allocation property
/// whenever the PLB answers: with the working set confined to a few
/// posmap pages (all PLB-resident after warmup), a sustained mixed
/// loop — chain walks only ever fired during warmup — must perform
/// **zero** allocator calls across 10k accesses.
fn recursive_plb_hit_allocation_check() -> bool {
    println!("-- recursive posmap PLB-hit allocation check --");
    let cfg = OramConfig::small_test()
        .with_levels(10)
        .with_posmap(PosMapSelect::Recursive { onchip_kb: 1 });
    let mut ctl = OramController::new(cfg).unwrap();
    // 64 addresses = 4 posmap pages: the 64-entry PLB holds them all.
    ctl.prefill((0..64u64).map(|i| (BlockAddr::new(i), i)));
    let mut i = 0u64;
    for _ in 0..4000 {
        i = (i + 17) % 64;
        black_box(ctl.access(Request::read(BlockAddr::new(i))));
    }
    let before = ALLOC.allocations();
    for step in 0..10_000u64 {
        i = (i + 17) % 64;
        match step % 5 {
            0 => black_box(ctl.access(Request::write(BlockAddr::new(i), step))),
            4 => black_box(ctl.dummy_access()),
            _ => black_box(ctl.access(Request::read(BlockAddr::new(i)))),
        };
    }
    let delta = ALLOC.allocations() - before;
    let verdict = if delta == 0 { "OK" } else { "FAIL" };
    println!(
        "steady_state_allocs/recursive_plb_hit {delta:>6} allocs in 10k accesses  [{verdict}]"
    );
    delta == 0
}

fn main() {
    controller_access();
    stash_ops();
    eviction_path();
    let mut ok = steady_state_allocation_check();
    ok &= recursive_plb_hit_allocation_check();
    if !ok {
        eprintln!("steady-state ORAM access loop allocated — zero-allocation regression");
        std::process::exit(1);
    }
}

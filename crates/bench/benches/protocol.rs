//! Criterion micro-benchmarks of the ORAM protocol layer: controller
//! access throughput per duplication policy, and stash primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oram_protocol::{
    Block, BlockAddr, DupPolicy, LeafLabel, OramConfig, OramController, Request, Stash,
};
use std::hint::black_box;

fn bench_controller_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("controller_access");
    g.sample_size(20);
    for (name, policy) in [
        ("tiny", DupPolicy::Off),
        ("rd_dup", DupPolicy::RdOnly),
        ("hd_dup", DupPolicy::HdOnly),
        ("dynamic3", DupPolicy::Dynamic { counter_bits: 3 }),
    ] {
        g.bench_with_input(BenchmarkId::new("policy", name), &policy, |b, &policy| {
            let cfg = OramConfig::small_test().with_levels(10).with_dup_policy(policy);
            let mut ctl = OramController::new(cfg).unwrap();
            ctl.prefill((0..400u64).map(|i| (BlockAddr::new(i), i)));
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 17) % 400;
                black_box(ctl.access(Request::read(BlockAddr::new(i))))
            });
        });
    }
    g.finish();
}

fn bench_stash_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("stash");
    g.bench_function("insert_lookup_evict", |b| {
        let mut stash = Stash::new(256);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let addr = BlockAddr::new(i % 512);
            stash.insert(Block::real(addr, LeafLabel::new(i % 64), i, 0));
            black_box(stash.lookup(addr));
            if stash.occupied() > 200 {
                stash.mark_evicted(addr);
            }
        });
    });
    g.finish();
}

fn bench_eviction_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("eviction");
    g.sample_size(20);
    g.bench_function("access_with_eviction_L12", |b| {
        let cfg = OramConfig::small_test().with_levels(12).with_dup_policy(DupPolicy::RdOnly);
        let mut ctl = OramController::new(cfg).unwrap();
        ctl.prefill((0..1500u64).map(|i| (BlockAddr::new(i), i)));
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 31) % 1500;
            black_box(ctl.access(Request::read(BlockAddr::new(i))))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_controller_access, bench_stash_ops, bench_eviction_path);
criterion_main!(benches);

//! CLI contract tests: usage errors exit with code 2 and a usage string,
//! never a panic. The audit itself runs in release mode in CI; here we
//! only exercise argument handling.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

#[test]
fn unknown_experiment_exits_2_with_usage() {
    let out = repro(&["figNaN"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown experiment"), "{err}");
    assert!(err.contains("usage: repro"), "{err}");
}

#[test]
fn missing_experiment_exits_2() {
    assert_eq!(repro(&[]).status.code(), Some(2));
}

#[test]
fn malformed_flags_exit_2() {
    for args in [
        &["table1", "--threads", "zero"][..],
        &["table1", "--threads"][..],
        &["table1", "--csv"][..],
        &["table1", "--levels", "many"][..],
        &["table1", "--no-such-flag"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("usage: repro"),
            "args {args:?}"
        );
    }
}

#[test]
fn invalid_levels_is_a_one_line_config_error() {
    let out = repro(&["table1", "--levels", "40"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("repro: invalid configuration:"), "{err}");
    assert!(err.contains("levels"), "{err}");
    // One line, no backtrace.
    assert_eq!(err.trim_end().lines().count(), 1, "{err}");
}

#[test]
fn help_exits_0() {
    for args in [&["--help"][..], &["audit", "--help"][..]] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(0), "args {args:?}");
        assert!(String::from_utf8_lossy(&out.stdout).contains("usage: repro"));
    }
}

#[test]
fn audit_usage_errors_exit_2() {
    for args in [
        &["audit", "--seed", "NaN"][..],
        &["audit", "--seed"][..],
        &["audit", "--trace-out"][..],
        &["audit", "--frobnicate"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("usage: repro audit"),
            "args {args:?}"
        );
    }
}

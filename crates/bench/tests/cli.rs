//! CLI contract tests: usage errors exit with code 2 and a usage string,
//! never a panic. The audit itself runs in release mode in CI; here we
//! only exercise argument handling.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

#[test]
fn unknown_experiment_exits_2_with_usage() {
    let out = repro(&["figNaN"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown experiment"), "{err}");
    assert!(err.contains("usage: repro"), "{err}");
}

#[test]
fn missing_experiment_exits_2() {
    assert_eq!(repro(&[]).status.code(), Some(2));
}

#[test]
fn malformed_flags_exit_2() {
    for args in [
        &["table1", "--threads", "zero"][..],
        &["table1", "--threads"][..],
        &["table1", "--csv"][..],
        &["table1", "--levels", "many"][..],
        &["table1", "--no-such-flag"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("usage: repro"),
            "args {args:?}"
        );
    }
}

#[test]
fn invalid_levels_is_a_one_line_config_error() {
    let out = repro(&["table1", "--levels", "40"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("repro: invalid configuration:"), "{err}");
    assert!(err.contains("levels"), "{err}");
    // One line, no backtrace.
    assert_eq!(err.trim_end().lines().count(), 1, "{err}");
}

#[test]
fn help_exits_0() {
    for args in [&["--help"][..], &["audit", "--help"][..]] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(0), "args {args:?}");
        assert!(String::from_utf8_lossy(&out.stdout).contains("usage: repro"));
    }
}

#[test]
fn trace_usage_errors_exit_2() {
    for args in [
        &["trace", "--misses", "NaN"][..],
        &["trace", "--misses", "0"][..],
        &["trace", "--out"][..],
        &["trace", "--window", "0"][..],
        &["trace", "--no-such-flag"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("usage: repro trace"),
            "args {args:?}"
        );
    }
}

#[test]
fn trace_help_exits_0() {
    let out = repro(&["trace", "--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage: repro trace"));
}

#[test]
fn trace_unknown_workload_fails_cleanly() {
    let out = repro(&["trace", "--quick", "--workload", "nonesuch"]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown workload"), "{err}");
}

#[test]
fn trace_run_exports_validated_artifacts() {
    use oram_telemetry::export::{validate_chrome_trace, validate_jsonl};
    use oram_telemetry::validate_timeseries_csv;

    let dir = std::env::temp_dir().join(format!("repro_trace_cli_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Tiny but real: ~1s in debug mode.
    let out = repro(&[
        "trace",
        "--quick",
        "--misses",
        "250",
        "--out",
        dir.to_str().expect("utf-8 temp path"),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("end-of-run report"), "{stdout}");

    for policy in ["tiny", "rd_dup", "hd_dup", "dynamic3"] {
        assert!(stdout.contains(policy), "report lists {policy}");
        let jsonl =
            std::fs::read_to_string(dir.join(format!("spans_{policy}.jsonl"))).expect("jsonl");
        assert!(validate_jsonl(&jsonl).expect("schema-valid JSONL") > 0, "{policy}");
        let trace =
            std::fs::read_to_string(dir.join(format!("trace_{policy}.json"))).expect("trace");
        assert!(validate_chrome_trace(&trace).expect("balanced trace") > 0, "{policy}");
        let ts = std::fs::read_to_string(dir.join(format!("timeseries_{policy}.csv")))
            .expect("timeseries");
        assert!(validate_timeseries_csv(&ts).expect("valid CSV") > 0, "{policy}");
        let metrics =
            std::fs::read_to_string(dir.join(format!("metrics_{policy}.csv"))).expect("metrics");
        assert!(metrics.starts_with("metric,kind,count,"), "{policy}: {metrics}");
    }
    assert!(dir.join("report.txt").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quiet_flag_is_accepted() {
    // --quiet must parse on the experiment path (heartbeats are already
    // suppressed for non-TTY stderr, so output is unchanged here).
    let out = repro(&["table1", "--quiet"]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("Table I"));
}

#[test]
fn audit_usage_errors_exit_2() {
    for args in [
        &["audit", "--seed", "NaN"][..],
        &["audit", "--seed"][..],
        &["audit", "--trace-out"][..],
        &["audit", "--frobnicate"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("usage: repro audit"),
            "args {args:?}"
        );
    }
}

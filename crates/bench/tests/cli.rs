//! CLI contract tests: usage errors exit with code 2 and a usage string,
//! never a panic. The audit itself runs in release mode in CI; here we
//! only exercise argument handling.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

#[test]
fn unknown_experiment_exits_2_with_usage() {
    let out = repro(&["figNaN"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown experiment"), "{err}");
    assert!(err.contains("usage: repro"), "{err}");
}

#[test]
fn missing_experiment_exits_2() {
    assert_eq!(repro(&[]).status.code(), Some(2));
}

#[test]
fn malformed_flags_exit_2() {
    for args in [
        &["table1", "--threads", "zero"][..],
        &["table1", "--threads"][..],
        &["table1", "--csv"][..],
        &["table1", "--levels", "many"][..],
        &["table1", "--no-such-flag"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("usage: repro"),
            "args {args:?}"
        );
    }
}

#[test]
fn invalid_levels_is_a_one_line_config_error() {
    let out = repro(&["table1", "--levels", "40"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("repro: invalid configuration:"), "{err}");
    assert!(err.contains("levels"), "{err}");
    // One line, no backtrace.
    assert_eq!(err.trim_end().lines().count(), 1, "{err}");
}

#[test]
fn help_exits_0() {
    for args in [&["--help"][..], &["audit", "--help"][..]] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(0), "args {args:?}");
        assert!(String::from_utf8_lossy(&out.stdout).contains("usage: repro"));
    }
}

#[test]
fn trace_usage_errors_exit_2() {
    for args in [
        &["trace", "--misses", "NaN"][..],
        &["trace", "--misses", "0"][..],
        &["trace", "--out"][..],
        &["trace", "--window", "0"][..],
        &["trace", "--no-such-flag"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("usage: repro trace"),
            "args {args:?}"
        );
    }
}

#[test]
fn trace_help_exits_0() {
    let out = repro(&["trace", "--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage: repro trace"));
}

#[test]
fn trace_unknown_workload_fails_cleanly() {
    let out = repro(&["trace", "--quick", "--workload", "nonesuch"]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown workload"), "{err}");
}

#[test]
fn trace_run_exports_validated_artifacts() {
    use oram_telemetry::export::{validate_chrome_trace, validate_jsonl};
    use oram_telemetry::validate_timeseries_csv;

    let dir = std::env::temp_dir().join(format!("repro_trace_cli_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Tiny but real: ~1s in debug mode.
    let out = repro(&[
        "trace",
        "--quick",
        "--misses",
        "250",
        "--out",
        dir.to_str().expect("utf-8 temp path"),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("end-of-run report"), "{stdout}");

    for policy in ["tiny", "rd_dup", "hd_dup", "dynamic3"] {
        assert!(stdout.contains(policy), "report lists {policy}");
        let jsonl =
            std::fs::read_to_string(dir.join(format!("spans_{policy}.jsonl"))).expect("jsonl");
        assert!(validate_jsonl(&jsonl).expect("schema-valid JSONL") > 0, "{policy}");
        let trace =
            std::fs::read_to_string(dir.join(format!("trace_{policy}.json"))).expect("trace");
        assert!(validate_chrome_trace(&trace).expect("balanced trace") > 0, "{policy}");
        let ts = std::fs::read_to_string(dir.join(format!("timeseries_{policy}.csv")))
            .expect("timeseries");
        assert!(validate_timeseries_csv(&ts).expect("valid CSV") > 0, "{policy}");
        let metrics =
            std::fs::read_to_string(dir.join(format!("metrics_{policy}.csv"))).expect("metrics");
        assert!(metrics.starts_with("metric,kind,count,"), "{policy}: {metrics}");
    }
    assert!(dir.join("report.txt").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quiet_flag_is_accepted() {
    // --quiet must parse on the experiment path (heartbeats are already
    // suppressed for non-TTY stderr, so output is unchanged here).
    let out = repro(&["table1", "--quiet"]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("Table I"));
}

#[test]
fn trace_quiet_suppresses_the_timing_line() {
    let dir = std::env::temp_dir().join(format!("repro_trace_quiet_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = repro(&[
        "trace",
        "--quick",
        "--quiet",
        "--misses",
        "250",
        "--out",
        dir.to_str().expect("utf-8 temp path"),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    // --quiet silences everything the subcommand says on stderr: the
    // heartbeat (even on a TTY) and the closing timing line.
    assert!(out.stderr.is_empty(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("end-of-run report"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn profile_usage_errors_exit_2() {
    for args in [
        &["profile", "--misses", "NaN"][..],
        &["profile", "--misses", "0"][..],
        &["profile", "--json"][..],
        &["profile", "--workload"][..],
        &["profile", "--no-such-flag"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("usage: repro profile"),
            "args {args:?}"
        );
    }
}

#[test]
fn profile_help_exits_0() {
    let out = repro(&["profile", "--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage: repro profile"));
}

#[test]
fn profile_then_compare_round_trips_through_the_guard() {
    use oram_telemetry::ProfileReport;

    let dir = std::env::temp_dir().join(format!("repro_profile_cli_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let json = dir.join("profile.json");

    // Tiny but real: the attribution table and the JSON export.
    let out = repro(&[
        "profile",
        "--quick",
        "--quiet",
        "--misses",
        "250",
        "--json",
        json.to_str().expect("utf-8 temp path"),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cycle attribution"), "{stdout}");
    assert!(stdout.contains("backend utilization"), "{stdout}");
    assert!(out.stderr.is_empty(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    // Identical runs compare clean (exit 0) — the simulator is
    // deterministic, so a self-compare is exactly zero on every metric.
    let self_cmp = repro(&["compare", json.to_str().unwrap(), json.to_str().unwrap()]);
    assert_eq!(self_cmp.status.code(), Some(0), "{}", String::from_utf8_lossy(&self_cmp.stderr));
    assert!(String::from_utf8_lossy(&self_cmp.stdout).contains("verdict: PASS"));

    // Inject a 10% latency regression into the candidate: exit 1.
    let text = std::fs::read_to_string(&json).expect("profile JSON");
    let mut report = ProfileReport::parse(&text).expect("own JSON parses");
    report.policies[0].total_cycles = report.policies[0].total_cycles * 11 / 10;
    let bad = dir.join("regressed.json");
    std::fs::write(&bad, report.to_json()).expect("write candidate");
    let cmp = repro(&["compare", json.to_str().unwrap(), bad.to_str().unwrap()]);
    assert_eq!(cmp.status.code(), Some(1), "{}", String::from_utf8_lossy(&cmp.stderr));
    let cmp_out = String::from_utf8_lossy(&cmp.stdout);
    assert!(cmp_out.contains("REGRESSION"), "{cmp_out}");
    assert!(cmp_out.contains("verdict: FAIL"), "{cmp_out}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compare_usage_errors_exit_2() {
    for args in [
        &["compare"][..],
        &["compare", "one.json"][..],
        &["compare", "a.json", "b.json", "c.json"][..],
        &["compare", "a.json", "b.json", "--tolerance", "NaN"][..],
        &["compare", "a.json", "b.json", "--no-such-flag"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("usage: repro compare"),
            "args {args:?}"
        );
    }
}

#[test]
fn compare_missing_file_exits_1() {
    let out = repro(&["compare", "/nonexistent/a.json", "/nonexistent/b.json"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("failed to read"));
}

#[test]
fn serve_usage_errors_exit_2() {
    for args in [
        &["serve", "--clients", "0"][..],
        &["serve", "--requests", "NaN"][..],
        &["serve", "--load", "-1"][..],
        &["serve", "--scheduler", "nonesuch"][..],
        &["serve", "--json"][..],
        &["serve", "--sweep", "--json", "/tmp/x.json"][..],
        &["serve", "--sweep", "--load", "2"][..],
        &["serve", "--shards", "0"][..],
        &["serve", "--shards", "NaN"][..],
        &["serve", "--shards"][..],
        &["serve", "--threads", "0"][..],
        &["serve", "--shard-sweep", "--shards", "2"][..],
        &["serve", "--shard-sweep", "--json", "/tmp/x.json"][..],
        &["serve", "--shard-sweep", "--sweep"][..],
        &["serve", "--backend"][..],
        &["serve", "--backend", "tape"][..],
        &["serve", "--backend", "dram", "--rtt-us", "100"][..],
        &["serve", "--backend", "dram", "--batch", "8"][..],
        &["serve", "--rtt-us", "100"][..],
        &["serve", "--backend", "wan", "--rtt-us", "0"][..],
        &["serve", "--backend", "wan", "--rtt-us", "NaN"][..],
        &["serve", "--backend", "wan", "--batch", "0"][..],
        &["serve", "--backend", "dram", "--disk-dir", "/tmp/x"][..],
        &["serve", "--backend", "wan", "--shards", "2"][..],
        &["serve", "--wan-sweep", "--backend", "disk"][..],
        &["serve", "--wan-sweep", "--rtt-us", "100"][..],
        &["serve", "--wan-sweep", "--batch", "8"][..],
        &["serve", "--wan-sweep", "--sweep"][..],
        &["serve", "--wan-sweep", "--json", "/tmp/x.json"][..],
        &["serve", "--csv", "/tmp/x"][..],
        &["serve", "--metrics-addr"][..],
        &["serve", "--metrics-linger"][..],
        &["serve", "--metrics-linger", "NaN"][..],
        &["serve", "--metrics-linger", "5"][..],
        &["serve", "--shard-sweep", "--metrics-addr", "127.0.0.1:0"][..],
        &["serve", "--wan-sweep", "--metrics-addr", "127.0.0.1:0"][..],
        &["serve", "--shard-sweep", "--top"][..],
        &["serve", "--wan-sweep", "--top"][..],
        &["serve", "--posmap"][..],
        &["serve", "--posmap", "nonesuch"][..],
        &["serve", "--plb-entries", "0"][..],
        &["serve", "--plb-entries", "NaN"][..],
        &["serve", "--posmap-onchip-kb", "0"][..],
        &["serve", "--posmap-budget-mb", "0"][..],
        &["serve", "--domain", "0"][..],
        &["serve", "--plb-entries", "8"][..],
        &["serve", "--posmap-onchip-kb", "32"][..],
        &["serve", "--posmap-sweep", "--sweep"][..],
        &["serve", "--posmap-sweep", "--json", "/tmp/x.json"][..],
        &["serve", "--posmap-sweep", "--posmap", "recursive"][..],
        &["serve", "--posmap-sweep", "--plb-entries", "64"][..],
        &["serve", "--posmap-sweep", "--levels", "12"][..],
        &["serve", "--posmap-sweep", "--domain", "512"][..],
        &["serve", "--posmap-sweep", "--shards", "2"][..],
        &["serve", "--posmap-sweep", "--load", "2"][..],
        &["serve", "--posmap-sweep", "--backend", "disk"][..],
        &["serve", "--posmap-sweep", "--metrics-addr", "127.0.0.1:0"][..],
        &["serve", "--posmap-sweep", "--top"][..],
        &["serve", "--no-such-flag"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("usage: repro serve"),
            "args {args:?}"
        );
    }
}

/// A flat position map that would not fit the configured memory budget
/// is a one-line exit-2 error pointing at `--posmap recursive`, before
/// anything runs — no usage dump, no panic.
#[test]
fn oversized_flat_posmap_is_a_one_line_exit_2() {
    let out = repro(&["serve", "--quick", "--levels", "24"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("use --posmap recursive"), "{err}");
    assert!(err.contains("MiB budget"), "{err}");
    assert_eq!(err.trim_end().lines().count(), 1, "{err}");
    // Raising the budget clears the guard (the config itself is valid);
    // so does switching to the recursive map at the default budget.
    let ok = repro(&[
        "serve", "--quick", "--quiet", "--requests", "20", "--scheduler", "fcfs", "--levels",
        "24", "--posmap-budget-mb", "8192",
    ]);
    assert_eq!(ok.status.code(), Some(0), "{}", String::from_utf8_lossy(&ok.stderr));
}

/// `--domain` past the tree's block slots is caught up front with a
/// one-line exit-2 error naming the slot count.
#[test]
fn domain_past_tree_capacity_is_a_one_line_exit_2() {
    let out = repro(&["serve", "--quick", "--levels", "12", "--domain", "999999999"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("block slots; raise --levels"), "{err}");
    assert_eq!(err.trim_end().lines().count(), 1, "{err}");
}

/// End-to-end recursive-posmap serve: the status line reports the chain
/// geometry, the report meta is tagged, and the run is deterministic.
#[test]
fn recursive_posmap_serve_prints_the_status_line() {
    let run = || {
        repro(&[
            "serve",
            "--quick",
            "--quiet",
            "--requests",
            "40",
            "--scheduler",
            "fcfs",
            "--posmap",
            "recursive",
            "--posmap-onchip-kb",
            "1",
        ])
    };
    let out = run();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("posmap: recursive,"), "{stdout}");
    assert!(stdout.contains("chain levels"), "{stdout}");
    assert!(stdout.contains("posmap recursive"), "{stdout}");
    let again = run();
    assert_eq!(stdout, String::from_utf8_lossy(&again.stdout), "non-deterministic");
}

#[test]
fn serve_help_exits_0() {
    let out = repro(&["serve", "--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage: repro serve"));
}

#[test]
fn serve_quick_json_is_deterministic_and_self_compares() {
    let dir = std::env::temp_dir().join(format!("repro_serve_cli_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");

    // Tiny but real: full self-validation (conservation laws, span
    // attribution, bus-trace audit) runs inside every serve invocation.
    let run = |path: &std::path::Path| {
        let out = repro(&[
            "serve",
            "--quick",
            "--quiet",
            "--requests",
            "80",
            "--json",
            path.to_str().expect("utf-8 temp path"),
        ]);
        assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(out.stderr.is_empty(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        stdout
    };
    let a = dir.join("a.json");
    let b = dir.join("b.json");
    let stdout_a = run(&a);
    let stdout_b = run(&b);

    // Same seed, same report — byte for byte, stdout and JSON alike.
    assert_eq!(stdout_a, stdout_b);
    for policy in ["fcfs", "round_robin", "oldest_first"] {
        assert!(stdout_a.contains(policy), "report lists {policy}: {stdout_a}");
    }
    assert!(stdout_a.contains("per-client"), "{stdout_a}");
    let json_a = std::fs::read_to_string(&a).expect("json a");
    let json_b = std::fs::read_to_string(&b).expect("json b");
    assert_eq!(json_a, json_b);

    // A deterministic report self-compares clean through the guard.
    let cmp = repro(&["compare", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(cmp.status.code(), Some(0), "{}", String::from_utf8_lossy(&cmp.stderr));
    assert!(String::from_utf8_lossy(&cmp.stdout).contains("verdict: PASS"));

    // Service reports never compare against profile reports.
    let profile = dir.join("profile.json");
    std::fs::write(&profile, "{}").expect("write stub");
    let mixed = repro(&["compare", a.to_str().unwrap(), profile.to_str().unwrap()]);
    assert_eq!(mixed.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&mixed.stderr).contains("cannot compare"),
        "{}",
        String::from_utf8_lossy(&mixed.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_serve_json_is_identical_across_thread_counts() {
    let dir = std::env::temp_dir().join(format!("repro_serve_shards_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");

    // The sharded backend partitions batches to shards in input order
    // before any shard runs, so the worker thread count must not change
    // a single output byte.
    let run = |threads: &str, path: &std::path::Path| {
        let out = repro(&[
            "serve",
            "--quick",
            "--quiet",
            "--requests",
            "60",
            "--scheduler",
            "fcfs",
            "--shards",
            "4",
            "--threads",
            threads,
            "--json",
            path.to_str().expect("utf-8 temp path"),
        ]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "threads {threads}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let p1 = dir.join("t1.json");
    let p2 = dir.join("t2.json");
    let p4 = dir.join("t4.json");
    let s1 = run("1", &p1);
    let s2 = run("2", &p2);
    let s4 = run("4", &p4);
    assert_eq!(s1, s2);
    assert_eq!(s1, s4);
    assert!(s1.contains("shards 4"), "{s1}");
    let j1 = std::fs::read_to_string(&p1).expect("json t1");
    assert_eq!(j1, std::fs::read_to_string(&p2).expect("json t2"));
    assert_eq!(j1, std::fs::read_to_string(&p4).expect("json t4"));
    assert!(j1.contains("\"shards\":4"), "{j1}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wan_serve_tags_the_report_and_takes_wan_flags() {
    let dir = std::env::temp_dir().join(format!("repro_serve_wan_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let json = dir.join("wan.json");
    let out = repro(&[
        "serve",
        "--quick",
        "--quiet",
        "--requests",
        "60",
        "--scheduler",
        "fcfs",
        "--backend",
        "wan",
        "--rtt-us",
        "300",
        "--batch",
        "8",
        "--json",
        json.to_str().expect("utf-8 temp path"),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("backend wan"), "{stdout}");
    let j = std::fs::read_to_string(&json).expect("wan json");
    assert!(j.contains("\"backend\":\"wan\""), "{j}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disk_serve_round_trips_on_a_named_dir() {
    let dir = std::env::temp_dir().join(format!("repro_serve_disk_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let out = repro(&[
        "serve",
        "--quick",
        "--quiet",
        "--requests",
        "40",
        "--scheduler",
        "fcfs",
        "--backend",
        "disk",
        "--disk-dir",
        dir.to_str().expect("utf-8 temp path"),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("backend disk"));
    // A named --disk-dir persists the store instead of cleaning it up.
    let kept = std::fs::read_dir(&dir).expect("dir").count();
    assert!(kept > 0, "named disk dir must keep the store");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wan_sweep_smoke_writes_the_figure_csv() {
    let dir = std::env::temp_dir().join(format!("repro_wan_sweep_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = repro(&[
        "serve",
        "--quick",
        "--quiet",
        "--requests",
        "60",
        "--wan-sweep",
        "--csv",
        dir.to_str().expect("utf-8 temp path"),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wan sweep"), "{stdout}");
    assert!(stdout.contains("monotone non-increasing"), "{stdout}");
    let csv = std::fs::read_to_string(
        dir.join("fig_b1_wan_per_request_cycles_vs_request_batch.csv"),
    )
    .expect("figure csv");
    assert!(csv.contains("label,batch_1,batch_2,batch_4,batch_8,batch_16"), "{csv}");
    assert!(csv.contains("rtt_50us"), "{csv}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The tentpole invariant of the observability plane: attaching the
/// metrics endpoint must not change a single output byte of the run.
#[test]
fn serve_output_is_byte_identical_with_metrics_endpoint() {
    let dir = std::env::temp_dir().join(format!("repro_serve_obsv_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");

    let run = |extra: &[&str], json: &std::path::Path| {
        let mut args = vec![
            "serve",
            "--quick",
            "--quiet",
            "--requests",
            "60",
            "--scheduler",
            "fcfs",
            "--json",
            json.to_str().expect("utf-8 temp path"),
        ];
        args.extend_from_slice(extra);
        let out = repro(&args);
        assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
        out.stdout
    };
    let plain_json = dir.join("plain.json");
    let live_json = dir.join("live.json");
    let plain = run(&[], &plain_json);
    let live = run(&["--metrics-addr", "127.0.0.1:0"], &live_json);
    assert_eq!(plain, live, "stdout must not change with the endpoint attached");
    assert_eq!(
        std::fs::read_to_string(&plain_json).expect("plain json"),
        std::fs::read_to_string(&live_json).expect("live json"),
        "JSON report must not change with the endpoint attached"
    );
    // --top is TTY-gated and silenced by --quiet: same invariant.
    let top_json = dir.join("top.json");
    let top = run(&["--top"], &top_json);
    assert_eq!(plain, top, "stdout must not change with --top --quiet");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--quiet` silences `--top` completely: stderr stays empty.
#[test]
fn serve_top_is_suppressed_by_quiet() {
    let out = repro(&[
        "serve", "--quick", "--quiet", "--requests", "40", "--scheduler", "fcfs", "--top",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(out.stderr.is_empty(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
}

/// End-to-end scrape: spawn a serve with the endpoint attached and a
/// linger window, read the bound address off stderr, and pull /metrics,
/// /healthz and /slo while the process is alive.
#[test]
fn serve_metrics_endpoint_answers_scrapes() {
    use std::io::BufRead;

    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "serve",
            "--quick",
            "--requests",
            "40",
            "--scheduler",
            "fcfs",
            "--metrics-addr",
            "127.0.0.1:0",
            "--metrics-linger",
            "60",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn repro serve");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut reader = std::io::BufReader::new(stderr);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read the endpoint line");
    let addr: std::net::SocketAddr = line
        .split("http://")
        .nth(1)
        .and_then(|s| s.split("/metrics").next())
        .expect("endpoint line names the address")
        .parse()
        .expect("address parses");

    let scrape = (|| -> std::io::Result<()> {
        // Poll /healthz until the endpoint answers (it is up already —
        // the address line prints after binding — but be tolerant).
        let mut last = None;
        for _ in 0..50 {
            match oram_obsv::http_get(addr, "/healthz") {
                Ok((status, body)) => {
                    assert!(status.contains("200"), "{status}");
                    assert!(body.contains("\"status\""), "{body}");
                    last = Some(());
                    break;
                }
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(100)),
            }
        }
        assert!(last.is_some(), "endpoint never answered /healthz");

        let (status, body) = oram_obsv::http_get(addr, "/metrics")?;
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("# TYPE oram_requests_completed_total counter"), "{body}");
        assert!(body.contains("oram_latency_cycles{quantile=\"0.999\"}"), "{body}");

        let (status, body) = oram_obsv::http_get(addr, "/slo")?;
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"objectives\""), "{body}");
        Ok(())
    })();

    let _ = child.kill();
    let _ = child.wait();
    scrape.expect("scrapes succeed");
}

/// `--shard-sweep --csv` writes the knee table with the new tail
/// columns.
#[test]
fn shard_sweep_writes_the_knee_csv() {
    let dir = std::env::temp_dir().join(format!("repro_shard_knee_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = repro(&[
        "serve",
        "--quick",
        "--quiet",
        "--requests",
        "30",
        "--clients",
        "2",
        "--shard-sweep",
        "--csv",
        dir.to_str().expect("utf-8 temp path"),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("p99.9@1.0"), "{stdout}");
    let csv =
        std::fs::read_to_string(dir.join("fig_c1_shard_sweep_saturation_knee.csv"))
            .expect("knee csv");
    assert!(
        csv.contains("label,knee_load,knee_req_per_mcyc,p99_at_load1,p99_9_at_load1"),
        "{csv}"
    );
    assert!(csv.contains("shards_1"), "{csv}");
    assert!(csv.contains("shards_4"), "{csv}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn audit_usage_errors_exit_2() {
    for args in [
        &["audit", "--seed", "NaN"][..],
        &["audit", "--seed"][..],
        &["audit", "--trace-out"][..],
        &["audit", "--frobnicate"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("usage: repro audit"),
            "args {args:?}"
        );
    }
}

/// A valid `--slo-spec` replaces the default objectives: the custom
/// objective name shows up in the dumped incident bundle's meta.json.
#[test]
fn slo_spec_overrides_objectives_in_the_bundle() {
    let dir = std::env::temp_dir().join(format!("repro_slo_spec_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let spec = dir.join("slo.json");
    std::fs::write(
        &spec,
        "{\"slos\":[{\"name\":\"latency_p95\",\"kind\":\"latency_above\",\
         \"threshold_cycles\":1500,\"budget\":0.05},\
         {\"name\":\"rejections\",\"kind\":\"rejection\",\"budget\":0.01}]}",
    )
    .expect("write spec");
    let bundle = dir.join("bundle");
    let out = repro(&[
        "serve",
        "--quick",
        "--quiet",
        "--requests",
        "40",
        "--clients",
        "2",
        "--scheduler",
        "fcfs",
        "--slo-spec",
        spec.to_str().expect("utf-8 temp path"),
        "--force-incident",
        "--incident-dir",
        bundle.to_str().expect("utf-8 temp path"),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let meta = std::fs::read_to_string(bundle.join("meta.json")).expect("meta.json");
    assert!(meta.contains("\"latency_p95\""), "{meta}");
    assert!(!meta.contains("\"latency_p99\""), "{meta}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A malformed SLO spec is a one-line error and exit 2, before anything
/// runs.
#[test]
fn malformed_slo_spec_is_a_one_line_exit_2() {
    let dir = std::env::temp_dir().join(format!("repro_slo_bad_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let cases = [
        "{\"slos\":[{\"name\":\"x\",\"kind\":\"latency_above\",\
         \"threshold_cycles\":0,\"budget\":0.05}]}",
        "{\"slos\":[]}",
        "not json",
        "{\"slos\":[{\"name\":\"Bad Name\",\"kind\":\"rejection\",\"budget\":0.5}]}",
    ];
    for (i, text) in cases.iter().enumerate() {
        let spec = dir.join(format!("bad{i}.json"));
        std::fs::write(&spec, text).expect("write spec");
        let out = repro(&[
            "serve",
            "--quick",
            "--slo-spec",
            spec.to_str().expect("utf-8 temp path"),
        ]);
        assert_eq!(out.status.code(), Some(2), "case {i}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("slo spec:"), "case {i}: {err}");
        assert_eq!(err.trim_end().lines().count(), 1, "case {i}: {err}");
    }
    // A missing file is also exit 2, not a panic.
    let out = repro(&["serve", "--quick", "--slo-spec", "/no/such/spec.json"]);
    assert_eq!(out.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--force-incident` without a dump directory is a usage error, as are
/// the incident flags on the sweeps.
#[test]
fn incident_flag_incompatibilities_exit_2() {
    for args in [
        &["serve", "--quick", "--force-incident"][..],
        &["serve", "--quick", "--sweep", "--incident-dir", "x"][..],
        &["incident"][..],
        &["incident", "--no-such-flag"][..],
        &["soak", "--quick", "--tenants", "0"][..],
        &["soak", "--quick", "--switch-backend", "dram"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
    }
}

/// The forced incident bundle lands on disk and `repro incident`
/// re-validates it offline.
#[test]
fn forced_incident_bundle_revalidates_offline() {
    let dir = std::env::temp_dir().join(format!("repro_incident_cli_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = repro(&[
        "serve",
        "--quick",
        "--quiet",
        "--requests",
        "40",
        "--clients",
        "2",
        "--scheduler",
        "fcfs",
        "--force-incident",
        "--incident-dir",
        dir.to_str().expect("utf-8 temp path"),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    for f in ["meta.json", "spans.jsonl", "trace.json", "metrics.prom"] {
        assert!(dir.join(f).is_file(), "{f} missing");
    }
    let out = repro(&["incident", dir.to_str().expect("utf-8 temp path")]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("incident bundle OK"), "{stdout}");
    assert!(stdout.contains("trigger: forced"), "{stdout}");
    // Tampering is caught.
    std::fs::write(dir.join("windows.jsonl"), "{\"broken\":1}\n").expect("tamper");
    let out = repro(&["incident", dir.to_str().expect("utf-8 temp path")]);
    assert_eq!(out.status.code(), Some(1));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A scaled-down soak produces a self-validated report that the compare
/// gate accepts against itself.
#[test]
fn soak_quick_report_passes_its_own_compare_gate() {
    let dir = std::env::temp_dir().join(format!("repro_soak_cli_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let json = dir.join("soak.json");
    let out = repro(&[
        "soak",
        "--quick",
        "--quiet",
        "--requests-total",
        "800",
        "--json",
        json.to_str().expect("utf-8 temp path"),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("checks: conservation ok eq1 ok"), "{stdout}");
    let out = repro(&[
        "compare",
        json.to_str().expect("utf-8 temp path"),
        json.to_str().expect("utf-8 temp path"),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("PASS"));
    let _ = std::fs::remove_dir_all(&dir);
}

//! The full-system engine: drives an LLC miss stream through the ORAM
//! controller and the DRAM timing model, producing the paper's Eq. 1
//! decomposition (`total = data access time + DRI`).
//!
//! Timeline model (all times in CPU cycles):
//!
//! * the CPU computes `gap` cycles after the previous blocking miss's data
//!   arrived, then issues the next request;
//! * the ORAM controller serializes accesses: a request starts no earlier
//!   than the end of the previous access's phases;
//! * with timing protection, accesses start only on multiples of the slot
//!   period, and empty slots carry dummy accesses;
//! * within a read-only path read, the requested data becomes available at
//!   the completion time of the earliest current copy (shadow advancing
//!   shows up here), plus AES latency; with XOR compression it is instead
//!   available at the end of the path read.

use oram_dram::{BlockRequest, DramSystem, SubtreeLayout};
use oram_protocol::{
    AccessResult, BlockAddr, BucketId, LeafLabel, OramController, PathPhase, PhaseKind,
    PosmapPhase, Request, ServedFrom, SharedObserver,
};
use oram_storage::{DramBackend, StorageBackend};
use oram_util::telemetry::SPAN_MAX_PHASES;
use oram_util::{
    AccessAttribution, AccessSpan, BusPhase, MetricId, PhaseSpan, ServeClass, SharedTelemetry,
    WindowSample,
};

use oram_cpu::{MissRecord, MissStream};

use crate::config::SystemConfig;
use crate::stats::{Histogram, SimStats};

/// How one access resolved in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AccessTiming {
    /// When the requested data reached the CPU.
    data_ready: u64,
    /// When the memory system finished all phases.
    end: u64,
    /// Whether any DRAM phases ran.
    touched_dram: bool,
}

/// How one externally scheduled request resolved (the service layer's
/// view of [`Engine::serve_request`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOutcome {
    /// CPU cycle the requested data reached the requester.
    pub data_ready: u64,
    /// CPU cycle the memory system finished all phases of the access.
    pub end: u64,
    /// Where the data came from.
    pub served: ServeClass,
    /// Whether the access occupied the DRAM path (false for pure
    /// on-chip serves).
    pub touched_dram: bool,
}

/// The system engine, generic over the bucket-storage backend that
/// answers path I/O. The default [`DramBackend`] reproduces the
/// original hard-wired DRAM engine bit for bit; [`Engine::with_backend`]
/// swaps in any other [`StorageBackend`] (persistent disk, simulated
/// WAN) without touching the protocol or attribution machinery.
#[derive(Debug)]
pub struct Engine<B: StorageBackend = DramBackend> {
    cfg: SystemConfig,
    controller: OramController,
    backend: B,
    layout: SubtreeLayout,
    /// When the memory system becomes free.
    controller_free: u64,
    /// In-flight eviction tail under pipelining: the eviction path's
    /// leaf and the cycle its write half drains. The next path read may
    /// start under this tail unless a hazard stalls it.
    pending_evict: Option<(LeafLabel, u64)>,
    /// Accesses whose path read overlapped an in-flight eviction tail.
    pipeline_overlapped: u64,
    /// Accesses stalled behind an eviction tail by a hazard.
    pipeline_stalled: u64,
    /// Running mean duration of a real DRAM-touching access (for the
    /// long-gap heuristic feeding dynamic partitioning).
    mean_access_cycles: f64,
    /// End time of the previous *real* data access (for DRI accounting).
    stats: SimStats,
    /// Reusable per-phase request buffer: sized once to a full path's
    /// blocks, then recycled so the steady-state access loop never
    /// allocates.
    reqs: Vec<BlockRequest>,
    /// Reusable completion-time buffer matching `reqs`.
    finishes: Vec<i64>,
    /// Per-access live stash occupancy (sampled after every controller
    /// access; the Path ORAM overflow argument lives in its tail).
    stash_hist: Histogram,
    /// Optional telemetry sink; `None` costs one branch per hook site.
    telemetry: Option<SharedTelemetry>,
    /// Time-series window length in CPU cycles (0 disables windows).
    window_cycles: u64,
    /// Monotone span sequence number.
    span_seq: u64,
    /// Cumulative-counter snapshot at the open window's start.
    window: WindowCursor,
    /// Per-access phase timing scratch, filled by `execute_phases` when
    /// telemetry is attached (fixed array: no allocation).
    phase_scratch: [PhaseSpan; SPAN_MAX_PHASES],
    phase_scratch_len: u8,
    /// Per-access cycle-attribution scratch, filled alongside
    /// `phase_scratch` (plain `Copy` data: no allocation).
    attr_scratch: AccessAttribution,
    /// Reusable posmap-walk phase buffer: the controller's pending
    /// posmap-ORAM phases are copied here before costing so the batch
    /// loop can borrow the backend mutably. Empty on flat backends and
    /// PLB hits, so the steady-state hot path never touches it.
    posmap_scratch: Vec<PosmapPhase>,
    /// The attached bus observer, kept so posmap walk batches can run
    /// with the backend observer detached (the combined trace carries
    /// `PosmapBucket` framing from the controller; device-level
    /// `DramBlock` events for walk batches would break the data-ORAM
    /// trace's flat-identity).
    bus_observer: Option<SharedObserver>,
}

/// Snapshot of the cumulative counters at the start of the open
/// time-series window, so each window emits deltas.
#[derive(Debug, Clone, Copy, Default)]
struct WindowCursor {
    index: u64,
    start_cycle: u64,
    data_requests: u64,
    onchip_served: u64,
    dummy_requests: u64,
    data_cycles: u64,
    shadow_advanced: u64,
}

impl Engine<DramBackend> {
    /// Builds an engine over the default DRAM timing backend.
    ///
    /// # Errors
    ///
    /// Returns the validation error of any component.
    pub fn new(cfg: SystemConfig) -> Result<Self, String> {
        cfg.validate()?;
        let backend = DramBackend::new(cfg.dram)?;
        Self::with_backend(cfg, backend)
    }

    /// Read access to the DRAM system (utilization counters, energy).
    pub fn dram(&self) -> &DramSystem {
        self.backend.system()
    }
}

impl<B: StorageBackend> Engine<B> {
    /// Builds an engine over an explicit storage backend. The backend
    /// must answer addresses produced by the [`SubtreeLayout`] derived
    /// from `cfg.dram` (every backend reuses that address map so bus
    /// traces stay backend-invariant).
    ///
    /// # Errors
    ///
    /// Returns the validation error of any component.
    pub fn with_backend(cfg: SystemConfig, backend: B) -> Result<Self, String> {
        cfg.validate()?;
        let controller = OramController::new(cfg.oram)?;
        let layout = SubtreeLayout::fit_to_row(&cfg.dram, cfg.oram.z);
        let path_blocks = (cfg.oram.levels as usize + 1) * cfg.oram.z;
        Ok(Engine {
            controller,
            backend,
            layout,
            controller_free: 0,
            pending_evict: None,
            pipeline_overlapped: 0,
            pipeline_stalled: 0,
            mean_access_cycles: 0.0,
            stats: SimStats::default(),
            reqs: Vec::with_capacity(path_blocks),
            finishes: Vec::with_capacity(path_blocks),
            stash_hist: Histogram::with_max(cfg.oram.stash_capacity),
            telemetry: None,
            window_cycles: 0,
            span_seq: 0,
            window: WindowCursor::default(),
            phase_scratch: [PhaseSpan::EMPTY; SPAN_MAX_PHASES],
            phase_scratch_len: 0,
            attr_scratch: AccessAttribution::ZERO,
            posmap_scratch: Vec::with_capacity(16),
            bus_observer: None,
            cfg,
        })
    }

    /// Attaches one bus observer to both ends of the controller↔storage
    /// boundary, producing a single interleaved trace: access framing and
    /// bucket order from the controller, device-level block requests from
    /// the storage backend.
    pub fn attach_bus_observer(&mut self, observer: SharedObserver) {
        self.controller.set_observer(Some(observer.clone()));
        self.backend.set_observer(Some(observer.clone()));
        self.bus_observer = Some(observer);
    }

    /// Detaches any attached bus observer from both components.
    pub fn detach_bus_observer(&mut self) {
        self.controller.set_observer(None);
        self.backend.set_observer(None);
        self.bus_observer = None;
    }

    /// Attaches one telemetry sink to the whole stack: the controller's
    /// event counters, the DRAM system's queue sampling, and the
    /// engine's own per-access spans and periodic time-series windows
    /// (`window_cycles` CPU cycles per window; 0 disables windows).
    /// Attaching mid-run is fine — the first window opens at the current
    /// cycle, so warmup can run dark.
    pub fn attach_telemetry(&mut self, telemetry: SharedTelemetry, window_cycles: u64) {
        self.controller.set_telemetry(Some(telemetry.clone()));
        self.backend.set_telemetry(Some(telemetry.clone()));
        self.telemetry = Some(telemetry);
        self.window_cycles = window_cycles;
        self.window = self.window_snapshot(self.window.index);
    }

    /// Detaches the telemetry sink from every component. The open
    /// time-series window (if any) is flushed first so no completed work
    /// goes unreported.
    pub fn detach_telemetry(&mut self) {
        if self.telemetry.is_some() && self.window_cycles > 0 {
            self.flush_window();
        }
        self.controller.set_telemetry(None);
        self.backend.set_telemetry(None);
        self.telemetry = None;
        self.window_cycles = 0;
    }

    /// A cursor capturing the cumulative counters right now, opening
    /// window `index` at the current cycle.
    fn window_snapshot(&self, index: u64) -> WindowCursor {
        WindowCursor {
            index,
            start_cycle: self.controller_free,
            data_requests: self.stats.data_requests,
            onchip_served: self.stats.onchip_served,
            dummy_requests: self.stats.dummy_requests,
            data_cycles: self.stats.data_cycles,
            shadow_advanced: self.controller.stats().shadow_advanced,
        }
    }

    /// Closes the open window at the current cycle, emitting the deltas
    /// accumulated since its start, and opens the next one.
    fn flush_window(&mut self) {
        let now = self.controller_free;
        let cur = self.window;
        if now <= cur.start_cycle {
            return; // nothing elapsed: nothing to report
        }
        let data_cycles = self.stats.data_cycles - cur.data_cycles;
        let sample = WindowSample {
            index: cur.index,
            start_cycle: cur.start_cycle,
            end_cycle: now,
            data_requests: self.stats.data_requests - cur.data_requests,
            onchip_served: self.stats.onchip_served - cur.onchip_served,
            dummy_requests: self.stats.dummy_requests - cur.dummy_requests,
            data_cycles,
            dri_cycles: (now - cur.start_cycle).saturating_sub(data_cycles),
            shadow_advanced: self.controller.stats().shadow_advanced - cur.shadow_advanced,
            stash_live: self.controller.stash().live() as u32,
        };
        if let Some(t) = &self.telemetry {
            t.lock().expect("telemetry poisoned").window(&sample);
        }
        self.window = self.window_snapshot(cur.index + 1);
    }

    /// The live stash-occupancy histogram, one sample per controller
    /// access (real or dummy) since construction.
    pub fn stash_occupancy(&self) -> &Histogram {
        &self.stash_hist
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Access to the controller (prefill, diagnostics).
    pub fn controller_mut(&mut self) -> &mut OramController {
        &mut self.controller
    }

    /// Immutable controller access.
    pub fn controller(&self) -> &OramController {
        &self.controller
    }

    /// Read access to the storage backend (stats, utilization, energy).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the storage backend (persistent-store
    /// inspection, error draining).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Pre-installs a working set (see
    /// [`OramController::prefill`]); call before [`Engine::run`]. For a
    /// persistent backend the whole post-prefill tree is synced so the
    /// durable image starts consistent.
    pub fn prefill_working_set(&mut self, blocks: u64) {
        self.controller
            .prefill((0..blocks).map(|a| (BlockAddr::new(a), 0)));
        if self.backend.wants_payloads() {
            let tree = self.controller.tree();
            for raw in 1..=tree.shape().bucket_count() {
                let id = BucketId::new(raw);
                self.backend.persist_bucket(raw - 1, tree.bucket(id).slots());
            }
        }
    }

    /// Runs the whole miss stream to completion and returns the final
    /// statistics. Can be called repeatedly; state (tree, caches inside
    /// the stream, DRAM banks) persists, and statistics accumulate.
    pub fn run<S: MissStream>(&mut self, misses: &mut S) -> SimStats {
        let mut cpu_ready: u64 = self.controller_free; // CPU may issue from here
        while let Some(miss) = misses.next_miss() {
            self.stats.misses_consumed += 1;
            cpu_ready = cpu_ready.saturating_add(miss.gap_cycles);
            let (timing, _) = self.dispatch(&miss, cpu_ready);
            if miss.blocking {
                cpu_ready = timing.data_ready;
            }
        }
        self.finalize();
        self.stats
    }

    /// Issues one externally scheduled request: the entry point for the
    /// service layer, which schedules its own batches instead of
    /// replaying a closed-loop miss stream.
    ///
    /// `arrival` is the CPU cycle the request reached the memory
    /// system; the access starts at `max(arrival, now)` (or the next
    /// timing-protection slot, with dummy accesses filling any idle
    /// slots in between, exactly as [`Engine::run`] would). The engine
    /// stays consistent with [`Engine::run`] — statistics accumulate,
    /// telemetry spans and bus events are emitted identically — so a
    /// service-driven run is auditable by the same machinery.
    ///
    /// Call [`Engine::finish`] after the last request to close the
    /// Eq. 1 accounting.
    pub fn serve_request(&mut self, addr: u64, is_write: bool, arrival: u64) -> ServeOutcome {
        self.stats.misses_consumed += 1;
        let miss =
            MissRecord { block_addr: addr, is_write, gap_cycles: 0, blocking: true };
        let (timing, served) = self.dispatch(&miss, arrival);
        ServeOutcome {
            data_ready: timing.data_ready,
            end: timing.end,
            served,
            touched_dram: timing.touched_dram,
        }
    }

    /// The current cycle: when the memory system becomes free.
    pub fn cycle(&self) -> u64 {
        self.controller_free
    }

    /// Completes the Eq. 1 accounting for an externally driven run (the
    /// counterpart of the bookkeeping [`Engine::run`] performs after
    /// draining its miss stream) and returns the statistics.
    pub fn finish(&mut self) -> SimStats {
        self.finalize();
        self.stats
    }

    /// Issues one miss at its ready time, injecting dummy slots first when
    /// timing protection is on. Returns the access timing and serve class.
    fn dispatch(&mut self, miss: &MissRecord, ready: u64) -> (AccessTiming, ServeClass) {
        let req = if miss.is_write {
            Request::write(BlockAddr::new(miss.block_addr), 0)
        } else {
            Request::read(BlockAddr::new(miss.block_addr))
        };

        // On-chip stash hits bypass the memory pipeline entirely: the CAM
        // answers while the DRAM side keeps whatever it was doing, and no
        // request slot is consumed (nothing externally visible happens).
        if self.controller.stash_would_serve(req.addr) {
            return self.execute_real(req, ready, ready);
        }

        match self.cfg.timing_protection {
            None => {
                // Dynamic-partitioning feedback: a gap much longer than an
                // access means a dummy would have been injected.
                if self.mean_access_cycles > 0.0 {
                    let idle = ready.saturating_sub(self.controller_free) as f64;
                    if idle > self.cfg.long_gap_factor * self.mean_access_cycles {
                        self.controller.record_long_gap();
                    }
                }
                if self.cfg.pipeline {
                    self.execute_real_pipelined(req, ready)
                } else {
                    let start = ready.max(self.controller_free);
                    self.execute_real(req, ready, start)
                }
            }
            Some(rate) => {
                // Fill slots with dummies until the request is ready.
                loop {
                    let slot = next_slot(self.controller_free, rate);
                    if slot >= ready {
                        return self.execute_real(req, ready, slot);
                    }
                    self.execute_dummy(slot);
                }
            }
        }
    }

    /// Runs a real request's access at `start` (having arrived at the
    /// memory system at `arrival <= start`).
    fn execute_real(&mut self, req: Request, arrival: u64, start: u64) -> (AccessTiming, ServeClass) {
        let result = self.controller.access(req);
        self.stash_hist.record(self.controller.stash().live());
        let timing = self.execute_phases(&result, start);
        if timing.touched_dram {
            self.stats.data_requests += 1;
            self.stats.data_cycles += timing.end - start;
            let dur = (timing.end - start) as f64;
            // Exponential moving average of access duration.
            self.mean_access_cycles = if self.mean_access_cycles == 0.0 {
                dur
            } else {
                0.95 * self.mean_access_cycles + 0.05 * dur
            };
        } else {
            self.stats.onchip_served += 1;
        }
        if self.telemetry.is_some() {
            if result.stash_hit_shadow {
                // HD-Dup stash-caching credit: the hit avoided roughly one
                // average DRAM access (the EMA the DRI feedback already
                // maintains).
                self.attr_scratch.stash_pull_credit = self.mean_access_cycles.round() as u64;
            }
            self.emit_span(result.served, true, arrival, start, timing);
            self.maybe_close_window();
        }
        (timing, classify(result.served, true))
    }

    /// Runs a real request's access under intra-controller pipelining:
    /// the read-only path read may start under the previous access's
    /// in-flight eviction tail unless a hazard stalls it, and this
    /// access's own eviction (when due) becomes the new in-flight tail.
    /// The protocol state mutates in exactly the sequential order — only
    /// issue times change, and the DRAM bank/bus contention model absorbs
    /// genuinely overlapping transfers.
    fn execute_real_pipelined(&mut self, req: Request, ready: u64) -> (AccessTiming, ServeClass) {
        let (result, ticket) = self.controller.access_issue(req);
        self.stash_hist.record(self.controller.stash().live());
        self.phase_scratch_len = 0;
        self.attr_scratch = AccessAttribution::ZERO;

        if result.phases.is_empty() {
            // Stash hit: never reaches the bus, no pipeline interaction.
            debug_assert!(!ticket.open());
            let timing = AccessTiming {
                data_ready: ready + u64::from(self.cfg.onchip_latency_cycles),
                end: ready,
                touched_dram: false,
            };
            self.stats.onchip_served += 1;
            if self.telemetry.is_some() {
                if result.stash_hit_shadow {
                    self.attr_scratch.stash_pull_credit = self.mean_access_cycles.round() as u64;
                }
                self.emit_span(result.served, true, ready, ready, timing);
                self.maybe_close_window();
            }
            return (timing, classify(result.served, true));
        }

        // Hazard check against the in-flight eviction tail: a path read
        // of the *same* path the writeback is rewriting must wait for it
        // to drain, as must one the stash cannot absorb; anything else
        // overlaps (bucket-level collisions serialize inside the DRAM
        // bank model, they don't need a stall).
        let mut start = ready.max(self.controller_free);
        if let Some((ev_leaf, ev_end)) = self.pending_evict {
            if start < ev_end {
                if self.evict_hazard(result.phases[0].leaf, ev_leaf) {
                    self.pipeline_stalled += 1;
                    start = ev_end;
                } else {
                    self.pipeline_overlapped += 1;
                }
            }
        }

        let mut data_ready: Option<u64> = None;
        // A pending posmap walk precedes the path read even under
        // pipelining: the leaf label must resolve before the data tree
        // can be addressed, so the walk sits on the access's critical
        // path and is charged to it like the path read itself.
        let walk_end = self.cost_posmap_walk(start);
        let ro_end =
            self.run_phase(&result.phases[0], result.served, start, walk_end, &mut data_ready);
        // The controller frees as soon as the path read drains: the next
        // access may issue under the eviction tail.
        self.controller_free = ro_end;

        let mut span_end = ro_end;
        if let Some((er, ew)) = self.controller.access_complete(ticket) {
            let ev_leaf = er.leaf;
            let mut ev_t = self.run_phase(&er, result.served, start, ro_end, &mut data_ready);
            ev_t = self.run_phase(&ew, result.served, start, ev_t, &mut data_ready);
            self.pending_evict = if ev_t > ro_end { Some((ev_leaf, ev_t)) } else { None };
            span_end = ev_t.max(ro_end);
        }

        let timing = AccessTiming {
            data_ready: data_ready.unwrap_or(ro_end),
            end: ro_end,
            touched_dram: true,
        };
        // Eq. 1 accounting charges the access's critical path (its own
        // path read); the overlapped eviction tail is background time
        // that only surfaces in the total when it is the run's tail.
        self.stats.data_requests += 1;
        self.stats.data_cycles += ro_end - start;
        let dur = (ro_end - start) as f64;
        self.mean_access_cycles = if self.mean_access_cycles == 0.0 {
            dur
        } else {
            0.95 * self.mean_access_cycles + 0.05 * dur
        };
        if self.telemetry.is_some() {
            let span_timing =
                AccessTiming { data_ready: timing.data_ready, end: span_end, touched_dram: true };
            self.emit_span(result.served, true, ready, start, span_timing);
            self.maybe_close_window();
        }
        (timing, classify(result.served, true))
    }

    /// Whether the next read-only path read must stall behind the
    /// in-flight eviction: same-path conflicts (the read needs buckets
    /// the writeback is still rewriting) and stash-capacity pressure (a
    /// path's worth of inserts could overflow before the writeback
    /// drains) stall; everything else overlaps.
    fn evict_hazard(&self, ro_leaf: LeafLabel, ev_leaf: LeafLabel) -> bool {
        if ro_leaf == ev_leaf {
            return true;
        }
        let shape = self.controller.shape();
        let path_blocks = (shape.levels() as usize + 1) * self.cfg.oram.z;
        self.controller.stash().live() + path_blocks >= self.cfg.oram.stash_capacity
    }

    /// Pipelining effectiveness counters: accesses whose path read
    /// overlapped an eviction tail, and accesses a hazard stalled behind
    /// one. Both stay zero with pipelining off.
    pub fn pipeline_counters(&self) -> (u64, u64) {
        (self.pipeline_overlapped, self.pipeline_stalled)
    }

    /// Runs a dummy access at `slot`.
    fn execute_dummy(&mut self, slot: u64) {
        let result = self.controller.dummy_access();
        self.stash_hist.record(self.controller.stash().live());
        let timing = self.execute_phases(&result, slot);
        self.stats.dummy_requests += 1;
        // Dummy time is DRI by definition (it is not a data request); the
        // residual accounting in finalize() handles it — nothing to add.
        debug_assert!(timing.end >= slot);
        if self.telemetry.is_some() {
            self.emit_span(result.served, false, slot, slot, timing);
            self.maybe_close_window();
        }
    }

    /// Emits one access-lifecycle span from the phase scratch the last
    /// `execute_phases` call filled. Only called with telemetry attached.
    fn emit_span(
        &mut self,
        served: ServedFrom,
        real: bool,
        arrival: u64,
        start: u64,
        timing: AccessTiming,
    ) {
        self.span_seq += 1;
        let class = classify(served, real);
        let (forward, blocks) = if !real {
            (u32::MAX, 0u32)
        } else {
            match served {
                ServedFrom::Stash | ServedFrom::Treetop => (u32::MAX, 0),
                ServedFrom::Dram { block_index, blocks_in_path, .. } => {
                    (block_index as u32, blocks_in_path as u32)
                }
                ServedFrom::Fresh { blocks_in_path } => (u32::MAX, blocks_in_path as u32),
            }
        };
        self.attr_scratch.queue_wait = start.saturating_sub(arrival);
        let span = AccessSpan {
            seq: self.span_seq,
            real,
            arrival,
            start,
            data_ready: timing.data_ready.max(start),
            end: timing.end.max(start),
            served: class,
            forward_index: forward,
            blocks_in_path: blocks,
            stash_live: self.controller.stash().live() as u32,
            attr: self.attr_scratch,
            phases: self.phase_scratch,
            phase_len: self.phase_scratch_len,
        };
        if let Some(t) = &self.telemetry {
            let mut sink = t.lock().expect("telemetry poisoned");
            sink.span(&span);
            let a = &span.attr;
            if span.phase_len > 0 {
                sink.sample(MetricId::AttrQueueWait, a.dram_queue);
                sink.sample(MetricId::AttrRowOps, a.dram_row);
                sink.sample(MetricId::AttrBusTransfer, a.dram_bus);
                sink.sample(MetricId::AttrEvictionOverhead, a.eviction);
                if a.network > 0 {
                    sink.sample(MetricId::AttrNetwork, a.network);
                }
                if a.posmap > 0 {
                    sink.sample(MetricId::AttrPosmap, a.posmap);
                }
            }
            if a.forward_saved > 0 {
                sink.sample(MetricId::ForwardSavedCycles, a.forward_saved);
            }
            if a.stash_pull_credit > 0 {
                sink.sample(MetricId::StashPullCreditCycles, a.stash_pull_credit);
            }
            if span.real {
                sink.sample(MetricId::ServiceQueueWait, a.queue_wait);
            }
        }
    }

    /// Closes the open time-series window if the current cycle has moved
    /// past its end. Only called with telemetry attached.
    fn maybe_close_window(&mut self) {
        if self.window_cycles == 0 {
            return;
        }
        if self.controller_free >= self.window.start_cycle + self.window_cycles {
            self.flush_window();
        }
    }

    /// Costs the posmap-ORAM walk the controller queued for the current
    /// access through the storage backend, returning the cycle the walk
    /// drains (`t` unchanged when no walk is pending — flat backends,
    /// PLB hits, dummies). The walk runs *before* the data path read:
    /// recursion has to resolve the leaf label before the data tree can
    /// be addressed. Its cycles land in the span's `posmap` attribution
    /// component; device-level `DramBlock` events are suppressed for
    /// walk batches (the combined trace carries the controller's
    /// `PosmapBucket` framing instead), so the data-ORAM device trace
    /// stays byte-identical to a flat-posmap run.
    fn cost_posmap_walk(&mut self, start: u64) -> u64 {
        if self.controller.posmap_pending().is_empty() {
            return start;
        }
        self.posmap_scratch.clear();
        self.posmap_scratch.extend_from_slice(self.controller.posmap_pending());
        if self.bus_observer.is_some() {
            self.backend.set_observer(None);
        }
        let z = self.cfg.oram.z;
        let mut t = start;
        for i in 0..self.posmap_scratch.len() {
            let p = self.posmap_scratch[i];
            let is_write = p.phase.kind == PhaseKind::EvictionWrite;
            self.reqs.clear();
            for b in p.phase.buckets() {
                for slot in 0..z {
                    let addr = self.layout.block_addr(b.raw() + p.bucket_offset, slot);
                    self.reqs.push(if is_write {
                        BlockRequest::write(addr)
                    } else {
                        BlockRequest::read(addr)
                    });
                }
            }
            if self.reqs.is_empty() {
                continue;
            }
            let now_dram = self.cfg.to_dram_cycles(t);
            self.backend.service_batch_into(now_dram, &self.reqs, true, &mut self.finishes);
            let end_dram = *self.finishes.iter().max().expect("non-empty batch");
            t = self.cfg.to_cpu_cycles(end_dram);
        }
        if self.bus_observer.is_some() {
            self.backend.set_observer(self.bus_observer.clone());
        }
        if self.telemetry.is_some() {
            self.attr_scratch.posmap += t - start;
        }
        t
    }

    /// Executes the DRAM phases of one access, returning its timing.
    fn execute_phases(&mut self, result: &AccessResult, start: u64) -> AccessTiming {
        self.phase_scratch_len = 0;
        self.attr_scratch = AccessAttribution::ZERO;
        if result.phases.is_empty() {
            // Pure on-chip service.
            let ready = start + u64::from(self.cfg.onchip_latency_cycles);
            return AccessTiming { data_ready: ready, end: start, touched_dram: false };
        }

        let mut t = self.cost_posmap_walk(start);
        let mut data_ready: Option<u64> = None;
        for phase in &result.phases {
            t = self.run_phase(phase, result.served, start, t, &mut data_ready);
        }

        self.controller_free = t;
        AccessTiming {
            data_ready: data_ready.unwrap_or(t),
            end: t,
            touched_dram: true,
        }
    }

    /// Executes one DRAM phase issued at `t` of an access started at
    /// `start`, updating attribution and the phase scratch, and filling
    /// `data_ready` when this is the serving read-only phase. Returns the
    /// phase's end time (`t` unchanged for fully treetop-cached phases).
    fn run_phase(
        &mut self,
        phase: &PathPhase,
        served: ServedFrom,
        start: u64,
        t: u64,
        data_ready: &mut Option<u64>,
    ) -> u64 {
        let z = self.cfg.oram.z;
        let is_ro = phase.kind == PhaseKind::ReadOnly;
        let is_write_phase = phase.kind == PhaseKind::EvictionWrite;
        self.reqs.clear();
        for b in phase.buckets() {
            for slot in 0..z {
                let addr = self.layout.block_addr(b.raw(), slot);
                self.reqs.push(if is_write_phase {
                    BlockRequest::write(addr)
                } else {
                    BlockRequest::read(addr)
                });
            }
        }
        if self.reqs.is_empty() {
            return t; // fully treetop-cached phase
        }
        let occupy_bus = !(self.cfg.xor_compression && is_ro);
        let now_dram = self.cfg.to_dram_cycles(t);
        self.backend
            .service_batch_into(now_dram, &self.reqs, occupy_bus, &mut self.finishes);
        if is_write_phase && self.backend.wants_payloads() {
            // The controller mutated the tree before the timing script
            // ran, so the bucket contents here are post-eviction: mirror
            // them to the durable store.
            for b in phase.buckets() {
                self.backend
                    .persist_bucket(b.raw() - 1, self.controller.tree().bucket(b).slots());
            }
        }
        let finishes = &self.finishes;
        let phase_end_dram = *finishes.iter().max().expect("non-empty batch");
        let phase_end = self.cfg.to_cpu_cycles(phase_end_dram);

        if is_ro && data_ready.is_none() {
            *data_ready = match served {
                ServedFrom::Treetop | ServedFrom::Stash => {
                    Some(start + u64::from(self.cfg.onchip_latency_cycles))
                }
                ServedFrom::Dram { block_index, via_shadow, .. } => {
                    if self.cfg.xor_compression {
                        // Data decodes only after the whole path
                        // arrives and is XORed.
                        Some(phase_end + u64::from(self.cfg.aes_latency_cycles))
                    } else {
                        let f = finishes
                            .get(block_index)
                            .copied()
                            .unwrap_or(phase_end_dram);
                        let arrived = self.cfg.to_cpu_cycles(f);
                        if via_shadow && self.telemetry.is_some() {
                            // RD-Dup early-forward savings: cycles
                            // between the shadow copy arriving and the
                            // path read draining.
                            self.attr_scratch.forward_saved =
                                phase_end.saturating_sub(arrived);
                        }
                        Some(arrived + u64::from(self.cfg.aes_latency_cycles))
                    }
                }
                ServedFrom::Fresh { .. } => {
                    Some(phase_end + u64::from(self.cfg.aes_latency_cycles))
                }
            };
        }
        if self.telemetry.is_some() {
            if is_ro {
                // Decompose the path read along the batch's critical
                // (finish-determining) request: queue wait, then device
                // positioning (row ops / seek), then network round
                // trips, then data transfer. Boundaries are clamped
                // monotonically so the parts partition [t, phase_end]
                // exactly even across the backend→CPU clock-domain
                // rounding; for the DRAM backend `network` is zero and
                // the cuts collapse to the original three-way split.
                if let Some(bd) = self.backend.last_batch_breakdown() {
                    let b_queue =
                        bd.finish - (bd.row + bd.network + bd.transfer) as i64;
                    let b_row = bd.finish - (bd.network + bd.transfer) as i64;
                    let b_net = bd.finish - bd.transfer as i64;
                    let cut_q = self.cfg.to_cpu_cycles(b_queue).clamp(t, phase_end);
                    let cut_r = self.cfg.to_cpu_cycles(b_row).clamp(cut_q, phase_end);
                    let cut_n = self.cfg.to_cpu_cycles(b_net).clamp(cut_r, phase_end);
                    self.attr_scratch.dram_queue += cut_q - t;
                    self.attr_scratch.dram_row += cut_r - cut_q;
                    self.attr_scratch.network += cut_n - cut_r;
                    self.attr_scratch.dram_bus += phase_end - cut_n;
                } else {
                    self.attr_scratch.dram_bus += phase_end - t;
                }
            } else {
                // Both eviction halves count as background overhead.
                self.attr_scratch.eviction += phase_end - t;
            }
        }
        if self.telemetry.is_some() && (self.phase_scratch_len as usize) < SPAN_MAX_PHASES {
            self.phase_scratch[self.phase_scratch_len as usize] = PhaseSpan {
                kind: match phase.kind {
                    PhaseKind::ReadOnly => BusPhase::ReadOnly,
                    PhaseKind::EvictionRead => BusPhase::EvictionRead,
                    PhaseKind::EvictionWrite => BusPhase::EvictionWrite,
                },
                start: t,
                end: phase_end,
            };
            self.phase_scratch_len += 1;
        }
        phase_end
    }

    /// Completes the Eq. 1 accounting after a run.
    fn finalize(&mut self) {
        if self.telemetry.is_some() && self.window_cycles > 0 {
            // Flush the tail so window sums cover the whole measured run.
            self.flush_window();
        }
        // Under pipelining the run only ends once the last eviction tail
        // drains, even though the controller freed earlier.
        self.stats.total_cycles =
            self.controller_free.max(self.pending_evict.map_or(0, |(_, end)| end));
        self.stats.dri_cycles =
            self.stats.total_cycles.saturating_sub(self.stats.data_cycles);
        self.stats.oram = self.controller.stats();
        self.stats.dram = self.backend.stats();
        let elapsed_ns = self.cfg.cpu_cycles_to_ns(self.stats.total_cycles);
        let counters = self.backend.energy();
        self.stats.set_energy(&self.cfg.energy, &counters, elapsed_ns);
    }

    /// Statistics of the work done so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }
}

/// Smallest multiple of `rate` that is `>= t`.
fn next_slot(t: u64, rate: u64) -> u64 {
    t.div_ceil(rate) * rate
}

/// Collapses the controller's serve source into the telemetry class.
fn classify(served: ServedFrom, real: bool) -> ServeClass {
    if !real {
        return ServeClass::Dummy;
    }
    match served {
        ServedFrom::Stash => ServeClass::Stash,
        ServedFrom::Treetop => ServeClass::Treetop,
        ServedFrom::Dram { via_shadow, .. } => {
            if via_shadow {
                ServeClass::DramShadow
            } else {
                ServeClass::DramReal
            }
        }
        ServedFrom::Fresh { .. } => ServeClass::Fresh,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_cpu::ReplayMisses;
    use oram_protocol::DupPolicy;

    fn miss(addr: u64, gap: u64) -> MissRecord {
        MissRecord { block_addr: addr, is_write: false, gap_cycles: gap, blocking: true }
    }

    fn run_with(cfg: SystemConfig, misses: Vec<MissRecord>) -> SimStats {
        let mut e = Engine::new(cfg).unwrap();
        e.prefill_working_set(64);
        let mut s = ReplayMisses::new(misses);
        e.run(&mut s)
    }

    #[test]
    fn next_slot_arithmetic() {
        assert_eq!(next_slot(0, 800), 0);
        assert_eq!(next_slot(1, 800), 800);
        assert_eq!(next_slot(800, 800), 800);
        assert_eq!(next_slot(801, 800), 1600);
    }

    #[test]
    fn totals_partition_into_data_plus_dri() {
        let misses: Vec<MissRecord> = (0..40).map(|i| miss(i % 64, 100)).collect();
        let s = run_with(SystemConfig::small_test(), misses);
        assert!(s.total_cycles > 0);
        assert_eq!(s.total_cycles, s.data_cycles + s.dri_cycles);
        assert_eq!(s.misses_consumed, 40);
    }

    #[test]
    fn gaps_increase_dri_not_data() {
        let short: Vec<MissRecord> = (0..30).map(|i| miss(i % 64, 10)).collect();
        let long: Vec<MissRecord> = (0..30).map(|i| miss(i % 64, 2000)).collect();
        let s_short = run_with(SystemConfig::small_test(), short);
        let s_long = run_with(SystemConfig::small_test(), long);
        assert!(s_long.dri_cycles > s_short.dri_cycles);
        assert!(s_long.total_cycles > s_short.total_cycles);
    }

    #[test]
    fn timing_protection_injects_dummies_on_long_gaps() {
        let misses: Vec<MissRecord> = (0..20).map(|i| miss(i % 64, 20_000)).collect();
        let cfg = SystemConfig::small_test().with_timing_protection(800);
        let s = run_with(cfg, misses);
        assert!(s.dummy_requests > 0, "long gaps must be filled with dummies");
    }

    #[test]
    fn timing_protection_none_means_no_dummies() {
        let misses: Vec<MissRecord> = (0..20).map(|i| miss(i % 64, 20_000)).collect();
        let s = run_with(SystemConfig::small_test(), misses);
        assert_eq!(s.dummy_requests, 0);
    }

    #[test]
    fn dummy_rate_tracks_idleness() {
        // Zero-gap streams keep every slot busy with real work (at most a
        // stray dummy when data lands just past a slot boundary); huge
        // gaps make dummies dominate.
        let busy: Vec<MissRecord> = (0..20).map(|i| miss(i % 64, 0)).collect();
        let idle: Vec<MissRecord> = (0..20).map(|i| miss(i % 64, 20_000)).collect();
        let cfg = SystemConfig::small_test().with_timing_protection(800);
        let s_busy = run_with(cfg.clone(), busy);
        let s_idle = run_with(cfg, idle);
        assert!(s_busy.dummy_requests <= s_busy.data_requests);
        assert!(s_idle.dummy_requests > 10 * s_busy.dummy_requests.max(1));
    }

    #[test]
    fn rd_dup_advances_accesses_without_hurting_total_time() {
        // A working set well beyond the stash keeps real path reads
        // flowing; at this toy tree depth (L = 7) advances span only a few
        // levels, so the assertion is mechanism + non-regression; the
        // quantitative win grows with tree depth and is validated by the
        // figure-level experiments (L >= 14).
        let misses: Vec<MissRecord> = (0..5000).map(|i| miss(i % 160, 300)).collect();
        let mut base_cfg = SystemConfig::small_test();
        base_cfg.oram.stash_capacity = 48;
        let mut rd_cfg = base_cfg.clone();
        rd_cfg.oram.dup_policy = DupPolicy::RdOnly;
        let base = run_with(base_cfg, misses.clone());
        let rd = run_with(rd_cfg, misses);
        assert!(rd.oram.shadow_advanced > 500, "accesses were advanced");
        assert!(
            rd.oram.mean_served_position() < base.oram.mean_served_position(),
            "advances must lower the mean serving position"
        );
        assert!(
            (rd.total_cycles as f64) < base.total_cycles as f64 * 1.03,
            "RD-Dup must not regress: {} vs {}",
            rd.total_cycles,
            base.total_cycles
        );
    }

    #[test]
    fn onchip_serves_do_not_consume_data_time() {
        // A stream with immediate re-references: blocks stay live in the
        // stash for roughly an eviction period, so re-touching a tiny set
        // produces on-chip serves.
        let mut misses = Vec::new();
        for i in 0..50u64 {
            misses.push(miss(i % 2, 5));
        }
        let s = run_with(SystemConfig::small_test(), misses);
        assert!(s.onchip_served > 0);
        assert_eq!(s.onchip_served + s.data_requests, 50);
    }

    #[test]
    fn xor_mode_runs_and_serves_at_path_end() {
        let misses: Vec<MissRecord> = (0..60).map(|i| miss(i % 64, 100)).collect();
        let base = run_with(SystemConfig::small_test(), misses.clone());
        let xor = run_with(SystemConfig::small_test().with_xor_compression(), misses);
        // XOR trades latency (data only at path end) for bus relief; the
        // result must stay in a sane band around the baseline.
        let ratio = xor.total_cycles as f64 / base.total_cycles as f64;
        assert!((0.5..=1.5).contains(&ratio), "xor/base ratio {ratio}");
        assert!(xor.data_requests > 0);
    }

    #[test]
    fn baseline_stash_occupancy_stays_within_path_oram_bound() {
        // Regression gate on the security parameter: under the default
        // (scaled Table I) configuration and a miss stream that defeats
        // the stash's natural caching, the live stash occupancy must stay
        // within the Path ORAM bound — a transient path's worth of blocks
        // plus a small overflow tail (Stefanov et al. give Pr[> R] ~
        // exp(-R); capacity 200 leaves head-room the run must not eat).
        let cfg = SystemConfig::scaled_default();
        let cap = cfg.oram.stash_capacity;
        let mut e = Engine::new(cfg).unwrap();
        e.prefill_working_set(4096);
        let misses: Vec<MissRecord> =
            (0..6000).map(|i| miss((i * 131) % 4096, 40)).collect();
        let mut s = ReplayMisses::new(misses);
        e.run(&mut s);
        let h = e.stash_occupancy();
        assert_eq!(h.total(), 6000);
        assert!(h.max() <= cap, "stash occupancy {} exceeded capacity {}", h.max(), cap);
        // The empirical bound with margin: regressions in eviction or
        // remap logic blow well past this before hitting capacity.
        assert!(h.max() <= 120, "max live occupancy regressed: {}", h.max());
        assert!(h.p999() <= h.max());
        assert!(h.mean() > 0.0);
    }

    #[test]
    fn stats_capture_controller_and_dram() {
        let misses: Vec<MissRecord> = (0..30).map(|i| miss(i, 10)).collect();
        let s = run_with(SystemConfig::small_test(), misses);
        assert!(s.oram.real_requests >= 30);
        assert!(s.dram.reads > 0);
        assert!(s.energy_mj > 0.0);
    }

    #[test]
    fn pipelining_overlaps_evictions_and_never_slows_the_run() {
        // Back-to-back misses over a working set large enough to defeat
        // the stash: evictions fire every A-1 accesses and their tails
        // overlap the following path reads.
        let misses: Vec<MissRecord> = (0..2000).map(|i| miss((i * 131) % 500, 50)).collect();
        let seq = run_with(SystemConfig::small_test(), misses.clone());

        let cfg = SystemConfig::small_test().with_pipeline();
        let mut e = Engine::new(cfg).unwrap();
        e.prefill_working_set(64);
        let mut s = ReplayMisses::new(misses);
        let pipe = e.run(&mut s);
        let (overlapped, stalled) = e.pipeline_counters();

        assert!(overlapped > 0, "no path read ever overlapped an eviction tail");
        assert!(
            pipe.total_cycles < seq.total_cycles,
            "pipelining must shorten a back-to-back run: {} vs {}",
            pipe.total_cycles,
            seq.total_cycles
        );
        // Eq. 1 still partitions: overlapped eviction time lands in DRI.
        assert_eq!(pipe.total_cycles, pipe.data_cycles + pipe.dri_cycles);
        // The protocol work itself is identical either way.
        assert_eq!(pipe.oram, seq.oram);
        let _ = stalled; // stall count is workload-dependent; may be zero
    }

    #[test]
    fn pipelining_counters_stay_zero_when_disabled() {
        let misses: Vec<MissRecord> = (0..200).map(|i| miss(i % 64, 50)).collect();
        let mut e = Engine::new(SystemConfig::small_test()).unwrap();
        e.prefill_working_set(64);
        let mut s = ReplayMisses::new(misses);
        e.run(&mut s);
        assert_eq!(e.pipeline_counters(), (0, 0));
    }

    #[test]
    fn recursive_posmap_walks_cost_real_time_and_keep_the_protocol_identical() {
        use oram_protocol::PosMapSelect;
        // L = 10 with a 1 KiB budget yields one posmap-ORAM level
        // (512 level-1 blocks → 16 top entries on chip).
        let misses: Vec<MissRecord> = (0..800).map(|i| miss((i * 131) % 700, 50)).collect();
        let mut flat_cfg = SystemConfig::small_test();
        flat_cfg.oram.levels = 10;
        let mut rec_cfg = flat_cfg.clone();
        rec_cfg.oram.posmap = PosMapSelect::Recursive { onchip_kb: 1 };

        let flat = run_with(flat_cfg, misses.clone());
        let rec = run_with(rec_cfg.clone(), misses.clone());
        // The walk costs real cycles on PLB misses...
        assert!(
            rec.total_cycles > flat.total_cycles,
            "posmap walks must cost time: {} vs {}",
            rec.total_cycles,
            flat.total_cycles
        );
        // ...but the data-ORAM protocol work is label-for-label identical
        // (the recursion only changes *where* the map lives).
        assert_eq!(rec.oram, flat.oram);
        assert_eq!(rec.data_requests, flat.data_requests);
        // And the whole thing is deterministic.
        let again = run_with(rec_cfg, misses);
        assert_eq!(again.total_cycles, rec.total_cycles);
    }

    #[test]
    fn stash_pressure_stalls_the_pipeline() {
        // With a roomy stash the hazard is (rare) same-path conflicts
        // only; shrinking the stash toward one path's worth of slots
        // must convert overlaps into stalls.
        let run = |capacity: usize| {
            let mut cfg = SystemConfig::small_test().with_pipeline();
            cfg.oram.stash_capacity = capacity;
            let misses: Vec<MissRecord> =
                (0..600).map(|i| miss((i * 131) % 200, 20)).collect();
            let mut e = Engine::new(cfg).unwrap();
            e.prefill_working_set(64);
            let mut s = ReplayMisses::new(misses);
            e.run(&mut s);
            e.pipeline_counters()
        };
        let path = (SystemConfig::small_test().oram.levels as usize + 1)
            * SystemConfig::small_test().oram.z;
        let (_, roomy_stalls) = run(SystemConfig::small_test().oram.stash_capacity);
        let (_, tight_stalls) = run(path + 1);
        assert!(tight_stalls > 0, "a one-path stash must stall on pressure");
        assert!(
            tight_stalls > roomy_stalls,
            "tighter stash must stall more: {tight_stalls} vs {roomy_stalls}"
        );
    }
}

//! A minimal scoped-thread job pool for embarrassingly parallel
//! experiment sweeps.
//!
//! The experiment harness runs hundreds of independent (workload, config,
//! policy) cells; each cell seeds its own RNGs from its own options, so
//! cells can run on any thread in any order and still produce bit-identical
//! statistics. [`parallel_map`] exploits exactly that: workers claim cells
//! from a shared atomic counter (work-stealing over a fixed job list) and
//! results are returned **in input order**, making a parallel sweep
//! indistinguishable from the sequential one, only faster.
//!
//! Built on [`std::thread::scope`] — no extra dependencies, no detached
//! threads, panics from workers propagate to the caller.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "SHADOW_ORAM_THREADS";

/// Default worker count: the [`THREADS_ENV`] environment variable when set
/// to a positive integer, otherwise the machine's available parallelism
/// (falling back to 1 when that cannot be determined).
pub fn default_threads() -> usize {
    if let Some(n) = std::env::var(THREADS_ENV).ok().and_then(|v| parse_threads(&v)) {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Parses a thread-count override; `None` for anything but a positive
/// integer.
fn parse_threads(s: &str) -> Option<usize> {
    match s.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

/// Applies `f` to every item on up to `threads` scoped worker threads and
/// returns the results in input order.
///
/// Scheduling is dynamic: workers repeatedly claim the next unclaimed
/// index, so long-running cells don't stall a statically partitioned
/// chunk. With `threads <= 1` or fewer than two items the map runs inline
/// on the caller's thread, with no pool overhead.
///
/// # Panics
///
/// Re-raises the panic of any worker (after all workers have stopped).
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_notify(threads, items, f, |_, _| {})
}

/// [`parallel_map`] with a completion callback: after each item finishes,
/// `notify(done, total)` is called with the number of items completed so
/// far and the total item count. The callback runs on whichever thread
/// finished the item (the caller's thread in inline mode), so it must be
/// cheap and `Sync` — it exists to drive progress heartbeats on long
/// sweeps, not to do work.
///
/// # Panics
///
/// Re-raises the panic of any worker (after all workers have stopped).
pub fn parallel_map_notify<T, R, F, N>(threads: usize, items: &[T], f: F, notify: N) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
    N: Fn(usize, usize) + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n);
    if threads <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let r = f(item);
                notify(i + 1, n);
                r
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let mut chunks: Vec<Vec<(usize, R)>> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(&items[i])));
                        let completed = done.fetch_add(1, Ordering::Relaxed) + 1;
                        notify(completed, n);
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(chunk) => chunks.push(chunk),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    for (i, r) in chunks.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "index {i} claimed twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|r| r.expect("every index was claimed by exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 4, 8] {
            let got = parallel_map(threads, &items, |&x| x * x);
            let want: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn uneven_work_is_balanced_dynamically() {
        // Early items are slow; a static split would serialize them on one
        // worker. The map must still return correct, ordered results.
        let items: Vec<u64> = (0..64).collect();
        let got = parallel_map(4, &items, |&x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x + 1
        });
        assert_eq!(got, (1..=64).collect::<Vec<u64>>());
    }

    #[test]
    fn degenerate_inputs_run_inline() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map::<u32, u32, _>(8, &empty, |&x| x).is_empty());
        assert_eq!(parallel_map(8, &[41], |&x| x + 1), vec![42]);
        assert_eq!(parallel_map(0, &[1, 2], |&x| x * 10), vec![10, 20]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let got = parallel_map(32, &[1u32, 2, 3], |&x| x * 2);
        assert_eq!(got, vec![2, 4, 6]);
    }

    #[test]
    fn thread_override_parsing() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 16 "), Some(16));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("-3"), None);
        assert_eq!(parse_threads("auto"), None);
        assert_eq!(parse_threads(""), None);
    }

    #[test]
    fn notify_reports_every_completion() {
        use std::sync::atomic::AtomicUsize;
        for threads in [1, 4] {
            let items: Vec<u64> = (0..50).collect();
            let calls = AtomicUsize::new(0);
            let max_seen = AtomicUsize::new(0);
            let got = parallel_map_notify(
                threads,
                &items,
                |&x| x * 2,
                |done, total| {
                    assert_eq!(total, 50);
                    assert!(done >= 1 && done <= total);
                    calls.fetch_add(1, Ordering::Relaxed);
                    max_seen.fetch_max(done, Ordering::Relaxed);
                },
            );
            assert_eq!(got, items.iter().map(|&x| x * 2).collect::<Vec<u64>>());
            assert_eq!(calls.load(Ordering::Relaxed), 50, "threads={threads}");
            assert_eq!(max_seen.load(Ordering::Relaxed), 50, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..16).collect();
        parallel_map(4, &items, |&x| {
            if x == 7 {
                panic!("boom");
            }
            x
        });
    }
}

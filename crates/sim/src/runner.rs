//! High-level experiment runner: workload profile in, [`SimStats`] out.
//!
//! The runner handles the plumbing every experiment shares: scaling the
//! workload's working set to the configured tree, prefilling the ORAM,
//! generating the reference trace, filtering it through the cache
//! hierarchy, warming up, and running both the ORAM system and the
//! insecure baseline on identical miss streams.

use oram_cpu::{HierarchyConfig, InOrderCore, MissRecord, MissStream, O3Config, O3Frontend, ReplayMisses};
use oram_util::SharedTelemetry;
use oram_workloads::{TraceGenerator, WorkloadProfile};

use crate::config::SystemConfig;
use crate::engine::Engine;
use crate::insecure::InsecureSystem;
use crate::stats::SimStats;

/// Options controlling one experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOptions {
    /// LLC misses to simulate (after warmup).
    pub misses: u64,
    /// LLC misses consumed for warmup (not measured).
    pub warmup_misses: u64,
    /// Trace seed.
    pub seed: u64,
    /// Target tree fill: the largest workload's working set is scaled to
    /// this fraction of the tree's slot capacity (paper: ~40%).
    pub fill_target: f64,
    /// Simulate the quad-core O3 front-end instead of the in-order core.
    pub o3: Option<O3Config>,
}

impl RunOptions {
    /// Quick defaults used by tests and the default harness runs.
    pub fn quick() -> Self {
        RunOptions { misses: 3000, warmup_misses: 600, seed: 7, fill_target: 0.35, o3: None }
    }

    /// Builder-style: sets the measured miss count.
    pub fn with_misses(mut self, n: u64) -> Self {
        self.misses = n;
        self
    }

    /// Builder-style: sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: enables the O3 front-end.
    pub fn with_o3(mut self, cfg: O3Config) -> Self {
        self.o3 = Some(cfg);
        self
    }
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions::quick()
    }
}

/// Result of one experiment: the ORAM system and the insecure baseline on
/// the same miss stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunResult {
    /// ORAM-system statistics.
    pub oram: SimStats,
    /// Insecure-baseline statistics.
    pub insecure: SimStats,
}

impl RunResult {
    /// Slowdown of the ORAM system over the insecure baseline.
    pub fn slowdown(&self) -> f64 {
        self.oram.slowdown_vs(&self.insecure)
    }

    /// Energy of the ORAM system normalized to the insecure baseline.
    pub fn energy_norm(&self) -> f64 {
        if self.insecure.energy_mj == 0.0 {
            f64::INFINITY
        } else {
            self.oram.energy_mj / self.insecure.energy_mj
        }
    }
}

/// Scales `profile` so the *largest* paper-scale workload hits
/// `fill_target` of the tree. All profiles share one factor so relative
/// footprints are preserved.
pub fn scale_profile(profile: &WorkloadProfile, cfg: &SystemConfig, fill_target: f64) -> WorkloadProfile {
    // mcf has the largest paper-scale working set (2^21 blocks).
    const LARGEST_WS: f64 = (1u64 << 21) as f64;
    let slots = oram_protocol::TreeShape::new(cfg.oram.levels, cfg.oram.z).slot_count() as f64;
    let factor = (slots * fill_target) / LARGEST_WS;
    profile.clone().scaled(factor.min(1.0))
}

/// Generates the miss stream for `profile` under `opts`: trace →
/// hierarchy → (optional O3 merge), collecting `warmup + misses` records.
pub fn build_miss_stream(
    profile: &WorkloadProfile,
    hierarchy: HierarchyConfig,
    opts: &RunOptions,
) -> Vec<MissRecord> {
    let total = opts.warmup_misses + opts.misses;
    let want = total as usize;
    let mut records = Vec::with_capacity(want);
    // Bound the raw-reference budget so workloads that mostly hit the LLC
    // terminate with a short stream rather than spinning forever.
    let ref_budget = total.saturating_mul(5_000).max(100_000);

    match opts.o3 {
        None => {
            let gen = TraceGenerator::new(profile.clone(), opts.seed, ref_budget);
            let mut core = InOrderCore::new(GenIter(gen), hierarchy);
            while records.len() < want {
                match core.next_miss() {
                    Some(m) => records.push(m),
                    None => break,
                }
            }
        }
        Some(o3cfg) => {
            let cores: Vec<_> = (0..o3cfg.cores)
                .map(|c| {
                    let gen = TraceGenerator::new(
                        profile.clone(),
                        opts.seed.wrapping_add(c as u64 * 0x9E37),
                        ref_budget,
                    );
                    InOrderCore::new(GenIter(gen), hierarchy)
                })
                .collect();
            let mut fe = O3Frontend::new(cores, o3cfg);
            while records.len() < want {
                match fe.next_miss() {
                    Some(m) => records.push(m),
                    None => break,
                }
            }
        }
    }
    records
}

/// Adapter giving the trace generator an `Iterator` face so it can feed
/// [`InOrderCore`] (which accepts any `RefStream`, including iterators).
#[derive(Debug)]
struct GenIter(TraceGenerator);

impl Iterator for GenIter {
    type Item = oram_cpu::MemRef;
    fn next(&mut self) -> Option<Self::Item> {
        use oram_cpu::RefStream;
        self.0.next_ref()
    }
}

/// Runs one workload under one system configuration, returning ORAM and
/// insecure statistics measured over the post-warmup misses.
///
/// # Panics
///
/// Panics if the configuration is invalid (experiments are supposed to be
/// constructed from validated building blocks).
pub fn run_workload(profile: &WorkloadProfile, cfg: &SystemConfig, opts: &RunOptions) -> RunResult {
    run_workload_with(profile, cfg, opts, None)
}

/// Like [`run_workload`], but attaches `telemetry` to the whole ORAM stack
/// for the **measured** portion of the run. Warmup runs dark, so the metric
/// stream, spans, and time-series windows cover exactly the misses that the
/// returned [`SimStats`] measure. `window_cycles` sets the time-series
/// sampling period in CPU cycles (0 disables windows).
///
/// # Panics
///
/// Panics if the configuration is invalid, as [`run_workload`] does.
pub fn run_workload_traced(
    profile: &WorkloadProfile,
    cfg: &SystemConfig,
    opts: &RunOptions,
    telemetry: SharedTelemetry,
    window_cycles: u64,
) -> RunResult {
    run_workload_with(profile, cfg, opts, Some((telemetry, window_cycles)))
}

/// Shared body of [`run_workload`] and [`run_workload_traced`].
fn run_workload_with(
    profile: &WorkloadProfile,
    cfg: &SystemConfig,
    opts: &RunOptions,
    telemetry: Option<(SharedTelemetry, u64)>,
) -> RunResult {
    let scaled = scale_profile(profile, cfg, opts.fill_target);
    let records = build_miss_stream(&scaled, cfg.hierarchy, opts);
    let split = (opts.warmup_misses as usize).min(records.len());
    let (warm, measured) = records.split_at(split);

    // --- ORAM system ---
    let mut engine = Engine::new(cfg.clone()).expect("valid config");
    engine.prefill_working_set(scaled.working_set_blocks);
    if !warm.is_empty() {
        engine.run(&mut ReplayMisses::new(warm.to_vec()));
    }
    if let Some((sink, window_cycles)) = telemetry {
        // Attach only now, so warmup noise never reaches the sink.
        engine.attach_telemetry(sink, window_cycles);
    }
    let before = engine.stats();
    let after = engine.run(&mut ReplayMisses::new(measured.to_vec()));
    engine.detach_telemetry();
    let oram = subtract_stats(&after, &before, cfg);

    // --- Insecure baseline (same measured records) ---
    let mut ins = InsecureSystem::new(cfg.clone()).expect("valid config");
    let insecure = ins.run(&mut ReplayMisses::new(measured.to_vec()));

    RunResult { oram, insecure }
}

/// Subtracts the warmup portion out of cumulative statistics.
fn subtract_stats(after: &SimStats, before: &SimStats, cfg: &SystemConfig) -> SimStats {
    let mut s = *after;
    s.total_cycles = after.total_cycles - before.total_cycles;
    s.data_cycles = after.data_cycles - before.data_cycles;
    s.dri_cycles = s.total_cycles.saturating_sub(s.data_cycles);
    s.data_requests = after.data_requests - before.data_requests;
    s.onchip_served = after.onchip_served - before.onchip_served;
    s.dummy_requests = after.dummy_requests - before.dummy_requests;
    s.misses_consumed = after.misses_consumed - before.misses_consumed;
    // Energy: scale the cumulative figure by the measured share of time
    // (counter-level subtraction would need per-phase snapshots; the
    // background-dominated split makes time share the right proxy).
    if after.total_cycles > 0 {
        s.energy_mj =
            after.energy_mj * (s.total_cycles as f64 / after.total_cycles as f64);
    }
    let _ = cfg;
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_workloads::spec;

    fn tiny_opts() -> RunOptions {
        RunOptions { misses: 300, warmup_misses: 100, seed: 3, fill_target: 0.3, o3: None }
    }

    #[test]
    fn scale_preserves_relative_sizes() {
        let cfg = SystemConfig::small_test();
        let mcf = scale_profile(&spec::profile("mcf"), &cfg, 0.3);
        let namd = scale_profile(&spec::profile("namd"), &cfg, 0.3);
        assert!(mcf.working_set_blocks > namd.working_set_blocks);
        let slots =
            oram_protocol::TreeShape::new(cfg.oram.levels, cfg.oram.z).slot_count();
        assert!(mcf.working_set_blocks as f64 <= 0.31 * slots as f64);
    }

    #[test]
    fn miss_stream_has_requested_length() {
        // libquantum streams through its whole (scaled) working set, which
        // exceeds the small LLC, so misses are plentiful.
        let cfg = SystemConfig::small_test();
        let p = scale_profile(&spec::profile("mcf"), &cfg, 0.3);
        let recs = build_miss_stream(&p, cfg.hierarchy, &tiny_opts());
        assert_eq!(recs.len(), 400);
    }

    #[test]
    fn llc_resident_workload_yields_short_stream_not_hang() {
        // A workload whose scaled working set fits in the LLC produces few
        // or no misses; the bounded reference budget must terminate it.
        let cfg = SystemConfig::small_test();
        let p = scale_profile(&spec::profile("namd"), &cfg, 0.3);
        let recs = build_miss_stream(&p, cfg.hierarchy, &tiny_opts());
        assert!(recs.len() <= 400);
    }

    #[test]
    fn run_workload_end_to_end() {
        let cfg = SystemConfig::small_test();
        let r = run_workload(&spec::profile("mcf"), &cfg, &tiny_opts());
        assert!(r.oram.total_cycles > 0);
        assert!(r.insecure.total_cycles > 0);
        assert!(r.slowdown() > 1.0, "ORAM must be slower than insecure");
        assert_eq!(r.oram.misses_consumed, 300);
    }

    #[test]
    fn o3_frontend_increases_memory_intensity() {
        let cfg = SystemConfig::small_test();
        let base = run_workload(&spec::profile("mcf"), &cfg, &tiny_opts());
        let o3 = run_workload(
            &spec::profile("mcf"),
            &cfg,
            &tiny_opts().with_o3(O3Config::paper_o3()),
        );
        // O3 shrinks gaps → lower DRI fraction.
        assert!(o3.oram.dri_fraction() < base.oram.dri_fraction());
    }
}

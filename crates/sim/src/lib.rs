//! # oram-sim
//!
//! Full-system simulator for the Shadow Block reproduction: connects the
//! synthetic workloads, cache hierarchy, ORAM controller and DDR3 timing
//! model, and produces the measurements the paper reports — total
//! execution time split into data-access time and DRI (Eq. 1), slowdown
//! over an insecure baseline, energy, and on-chip hit rates.
//!
//! * [`SystemConfig`] — Table I in one struct (CPU, caches, ORAM, DRAM,
//!   timing protection, XOR compression, energy model).
//! * [`Engine`] — the ORAM-system event loop.
//! * [`InsecureSystem`] — the no-ORAM baseline for normalization.
//! * [`run_workload`] — one-call experiment: profile + config → stats.
//! * [`parallel_map`] — scoped-thread job pool running independent
//!   experiment cells in parallel with bit-identical (ordered) results.
//! * [`ShardedOram`] — the address space partitioned over `M` independent
//!   engine shards served concurrently through the pool.
//! * [`StorageBackend`] — pluggable bucket storage behind the engine:
//!   [`DramBackend`] (the DDR3 model, the default), [`DiskBackend`]
//!   (persistent crash-consistent bucket store), and [`WanBackend`]
//!   (deterministic RTT/bandwidth network model), re-exported from
//!   `oram-storage`.
//!
//! ## Quick example
//!
//! ```
//! use oram_sim::{run_workload, RunOptions, SystemConfig};
//! use oram_workloads::spec;
//!
//! let cfg = SystemConfig::small_test();
//! let opts = RunOptions { misses: 200, warmup_misses: 50, ..RunOptions::quick() };
//! let r = run_workload(&spec::profile("hmmer"), &cfg, &opts);
//! assert!(r.slowdown() > 1.0); // ORAM costs something
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod engine;
mod insecure;
mod pool;
mod runner;
mod shard;
mod stats;

pub use config::SystemConfig;
pub use engine::{Engine, ServeOutcome};
pub use oram_storage::{
    BatchBreakdown, DiskBackend, DiskConfig, DiskStore, DramBackend, RecoveredBucket,
    StorageBackend, WanBackend, WanConfig,
};
pub use insecure::InsecureSystem;
pub use pool::{default_threads, parallel_map, parallel_map_notify, THREADS_ENV};
#[cfg(feature = "mutants")]
pub use shard::ShardMutant;
pub use shard::{ShardRequest, ShardedOram};
pub use runner::{
    build_miss_stream, run_workload, run_workload_traced, scale_profile, RunOptions, RunResult,
};
pub use stats::{gmean, Histogram, SimStats};

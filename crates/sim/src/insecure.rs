//! The insecure baseline system: the same CPU and DRAM, but each LLC miss
//! is a single 64-byte DRAM access with no ORAM indirection. Figures 11,
//! 12 and 15 normalize against this system.

use oram_cpu::{MissRecord, MissStream};
use oram_dram::{BlockRequest, DramSystem};

use crate::config::SystemConfig;
use crate::stats::SimStats;

/// The insecure-system simulator.
#[derive(Debug)]
pub struct InsecureSystem {
    cfg: SystemConfig,
    dram: DramSystem,
    mem_free: u64,
    stats: SimStats,
}

impl InsecureSystem {
    /// Builds the baseline system.
    ///
    /// # Errors
    ///
    /// Returns the validation error of any component.
    pub fn new(cfg: SystemConfig) -> Result<Self, String> {
        cfg.validate()?;
        let dram = DramSystem::new(cfg.dram)?;
        Ok(InsecureSystem { dram, mem_free: 0, stats: SimStats::default(), cfg })
    }

    /// Runs the miss stream to completion.
    pub fn run<S: MissStream>(&mut self, misses: &mut S) -> SimStats {
        let mut cpu_ready: u64 = 0;
        while let Some(miss) = misses.next_miss() {
            self.stats.misses_consumed += 1;
            cpu_ready = cpu_ready.saturating_add(miss.gap_cycles);
            let timing = self.one_access(&miss, cpu_ready);
            if miss.blocking {
                cpu_ready = timing;
            }
        }
        self.stats.total_cycles = self.mem_free.max(cpu_ready);
        self.stats.dri_cycles =
            self.stats.total_cycles.saturating_sub(self.stats.data_cycles);
        self.stats.dram = self.dram.stats();
        let elapsed_ns = self.cfg.cpu_cycles_to_ns(self.stats.total_cycles);
        let counters = self.dram.energy();
        self.stats.set_energy(&self.cfg.energy, &counters, elapsed_ns);
        self.stats
    }

    /// Services one miss; returns the data-ready time.
    fn one_access(&mut self, miss: &MissRecord, ready: u64) -> u64 {
        let start = ready.max(self.mem_free);
        let req = if miss.is_write {
            BlockRequest::write(miss.block_addr)
        } else {
            BlockRequest::read(miss.block_addr)
        };
        let now_dram = self.cfg.to_dram_cycles(start);
        let finish = self.dram.service_batch(now_dram, &[req])[0];
        let end = self.cfg.to_cpu_cycles(finish);
        self.mem_free = end;
        self.stats.data_requests += 1;
        self.stats.data_cycles += end - start;
        end + u64::from(self.cfg.onchip_latency_cycles)
    }

    /// Statistics so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_cpu::ReplayMisses;

    fn miss(addr: u64, gap: u64) -> MissRecord {
        MissRecord { block_addr: addr, is_write: false, gap_cycles: gap, blocking: true }
    }

    #[test]
    fn insecure_is_much_faster_than_oram() {
        let misses: Vec<MissRecord> = (0..100).map(|i| miss(i % 64, 50)).collect();
        let mut ins = InsecureSystem::new(SystemConfig::small_test()).unwrap();
        let si = ins.run(&mut ReplayMisses::new(misses.clone()));

        let mut eng = crate::engine::Engine::new(SystemConfig::small_test()).unwrap();
        eng.prefill_working_set(64);
        let so = eng.run(&mut ReplayMisses::new(misses));

        assert!(
            so.total_cycles > 2 * si.total_cycles,
            "ORAM {} should be several times the insecure {}",
            so.total_cycles,
            si.total_cycles
        );
    }

    #[test]
    fn accounts_every_miss() {
        let misses: Vec<MissRecord> = (0..25).map(|i| miss(i, 10)).collect();
        let mut ins = InsecureSystem::new(SystemConfig::small_test()).unwrap();
        let s = ins.run(&mut ReplayMisses::new(misses));
        assert_eq!(s.misses_consumed, 25);
        assert_eq!(s.data_requests, 25);
        assert!(s.energy_mj > 0.0);
    }

    #[test]
    fn writes_do_not_block_cpu_time() {
        let wb = MissRecord { block_addr: 1, is_write: true, gap_cycles: 0, blocking: false };
        let demand = miss(2, 0);
        let mut ins = InsecureSystem::new(SystemConfig::small_test()).unwrap();
        let s = ins.run(&mut ReplayMisses::new(vec![wb, demand]));
        assert_eq!(s.data_requests, 2);
    }
}

//! Full-system configuration: CPU, caches, ORAM controller, DRAM, timing
//! protection and energy — Table I of the paper in one struct.

use oram_cpu::HierarchyConfig;
use oram_dram::{DramConfig, EnergyModel};
use oram_protocol::OramConfig;

/// Everything needed to instantiate one simulated system.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// CPU core clock in GHz (Table I: 2.0).
    pub cpu_freq_ghz: f64,
    /// ORAM controller configuration.
    pub oram: OramConfig,
    /// DRAM timing configuration.
    pub dram: DramConfig,
    /// Cache hierarchy configuration.
    pub hierarchy: HierarchyConfig,
    /// Timing protection: constant request rate in CPU cycles between
    /// ORAM request slots (`None` disables protection; the paper uses
    /// 800 cycles in Sec. VI-C).
    pub timing_protection: Option<u64>,
    /// Model XOR path compression (Ring-ORAM style): the requested data
    /// only becomes available once the whole path has been read and
    /// XOR-decoded, but read bursts do not occupy the shared data bus
    /// (the in-memory hub returns a single block).
    pub xor_compression: bool,
    /// AES-128 decryption latency in CPU cycles (Table I: 32).
    pub aes_latency_cycles: u32,
    /// On-chip service latency (stash CAM + control overhead) in CPU cycles.
    pub onchip_latency_cycles: u32,
    /// DRAM energy model.
    pub energy: EnergyModel,
    /// Idle-gap threshold (in multiples of the running mean access time)
    /// beyond which, without timing protection, the dynamic partitioner
    /// is fed a long-gap signal (the counterpart of observing a dummy
    /// request when protection is on).
    pub long_gap_factor: f64,
    /// Intra-controller pipelining: overlap access `k+1`'s path read with
    /// access `k`'s eviction writeback where no hazard (shared off-treetop
    /// path bucket, or stash near capacity) forces a stall. Timing-only —
    /// protocol state still mutates in strict issue order. Incompatible
    /// with timing protection, whose fixed slot grid assumes a serialized
    /// controller.
    pub pipeline: bool,
}

impl SystemConfig {
    /// The scaled-down default: a `L = 14` tree that builds fast, with all
    /// other parameters at their Table I values.
    pub fn scaled_default() -> Self {
        let mut oram = OramConfig::paper_table1();
        oram.levels = 14;
        oram.stash_capacity = 200;
        SystemConfig {
            cpu_freq_ghz: 2.0,
            oram,
            dram: DramConfig::ddr3_1333(),
            hierarchy: HierarchyConfig::scaled_small(),
            timing_protection: None,
            xor_compression: false,
            aes_latency_cycles: 32,
            onchip_latency_cycles: 4,
            energy: EnergyModel::ddr3_typical(),
            long_gap_factor: 1.0,
            pipeline: false,
        }
    }

    /// A tiny configuration for unit tests.
    pub fn small_test() -> Self {
        SystemConfig {
            cpu_freq_ghz: 2.0,
            oram: OramConfig::small_test(),
            dram: DramConfig::ddr3_1333(),
            hierarchy: HierarchyConfig::small_test(),
            timing_protection: None,
            xor_compression: false,
            aes_latency_cycles: 32,
            onchip_latency_cycles: 4,
            energy: EnergyModel::ddr3_typical(),
            long_gap_factor: 1.0,
            pipeline: false,
        }
    }

    /// Builder-style: enables timing protection at the given slot period.
    pub fn with_timing_protection(mut self, period_cycles: u64) -> Self {
        self.timing_protection = Some(period_cycles);
        self
    }

    /// Builder-style: replaces the ORAM configuration.
    pub fn with_oram(mut self, oram: OramConfig) -> Self {
        self.oram = oram;
        self
    }

    /// Builder-style: enables the XOR-compression model.
    pub fn with_xor_compression(mut self) -> Self {
        self.xor_compression = true;
        self
    }

    /// Builder-style: enables intra-controller pipelining.
    pub fn with_pipeline(mut self) -> Self {
        self.pipeline = true;
        self
    }

    /// CPU cycles per DRAM cycle (e.g. 3.0 for a 2 GHz core and DDR3-1333).
    pub fn cpu_cycles_per_dram_cycle(&self) -> f64 {
        self.dram.tck_ns * self.cpu_freq_ghz
    }

    /// Converts a CPU-cycle time to DRAM cycles (floor).
    pub fn to_dram_cycles(&self, cpu_cycles: u64) -> i64 {
        (cpu_cycles as f64 / self.cpu_cycles_per_dram_cycle()) as i64
    }

    /// Converts a DRAM-cycle time to CPU cycles (ceiling).
    pub fn to_cpu_cycles(&self, dram_cycles: i64) -> u64 {
        (dram_cycles.max(0) as f64 * self.cpu_cycles_per_dram_cycle()).ceil() as u64
    }

    /// Converts CPU cycles to nanoseconds.
    pub fn cpu_cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 / self.cpu_freq_ghz
    }

    /// Validates all components.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.cpu_freq_ghz <= 0.0 {
            return Err("CPU frequency must be positive".into());
        }
        if let Some(p) = self.timing_protection {
            if p == 0 {
                return Err("timing-protection period must be positive".into());
            }
        }
        if self.long_gap_factor <= 0.0 {
            return Err("long_gap_factor must be positive".into());
        }
        if self.pipeline && self.timing_protection.is_some() {
            return Err("pipelining is incompatible with timing protection".into());
        }
        self.oram.validate()?;
        self.dram.validate()?;
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::scaled_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        SystemConfig::scaled_default().validate().unwrap();
        SystemConfig::small_test().validate().unwrap();
    }

    #[test]
    fn clock_conversions_round_trip_approximately() {
        let c = SystemConfig::small_test();
        assert!((c.cpu_cycles_per_dram_cycle() - 3.0).abs() < 1e-9);
        assert_eq!(c.to_dram_cycles(300), 100);
        assert_eq!(c.to_cpu_cycles(100), 300);
        assert_eq!(c.to_cpu_cycles(c.to_dram_cycles(299)), 297);
    }

    #[test]
    fn builders_compose() {
        let c = SystemConfig::small_test()
            .with_timing_protection(800)
            .with_xor_compression();
        assert_eq!(c.timing_protection, Some(800));
        assert!(c.xor_compression);
        c.validate().unwrap();
    }

    #[test]
    fn validation_rejects_zero_rate() {
        let c = SystemConfig::small_test().with_timing_protection(0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn pipelining_excludes_timing_protection() {
        SystemConfig::small_test().with_pipeline().validate().unwrap();
        let c = SystemConfig::small_test().with_pipeline().with_timing_protection(800);
        assert!(c.validate().is_err());
    }
}

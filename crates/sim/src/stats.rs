//! Simulation statistics: the paper's Eq. 1 decomposition
//! (`total = data access time + DRI`), energy, and derived metrics.

use oram_dram::{ChannelStats, EnergyCounters, EnergyModel};
use oram_protocol::OramStats;

/// Timing and event statistics for one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    /// Total execution time in CPU cycles.
    pub total_cycles: u64,
    /// Cycles during which a *real data* ORAM request occupied the memory
    /// system (path reads plus piggybacked evictions).
    pub data_cycles: u64,
    /// Everything else — the paper's DRI: idle intervals plus dummy
    /// requests (`total - data`).
    pub dri_cycles: u64,
    /// Real ORAM requests serviced via path access.
    pub data_requests: u64,
    /// Requests served on chip (stash/treetop) without memory traffic.
    pub onchip_served: u64,
    /// Dummy ORAM requests injected (timing protection).
    pub dummy_requests: u64,
    /// LLC misses consumed from the workload.
    pub misses_consumed: u64,
    /// DRAM energy in millijoules (dynamic + background over total time).
    pub energy_mj: f64,
    /// Final ORAM controller statistics.
    pub oram: OramStats,
    /// Final DRAM scheduling statistics.
    pub dram: ChannelStats,
}

impl SimStats {
    /// Fraction of total time spent in real data requests.
    pub fn data_fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.data_cycles as f64 / self.total_cycles as f64
        }
    }

    /// Fraction of total time that is DRI (Eq. 1 residual).
    pub fn dri_fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.dri_cycles as f64 / self.total_cycles as f64
        }
    }

    /// Slowdown of this run relative to a baseline run (e.g. the insecure
    /// system): `self.total / baseline.total`.
    pub fn slowdown_vs(&self, baseline: &SimStats) -> f64 {
        if baseline.total_cycles == 0 {
            f64::INFINITY
        } else {
            self.total_cycles as f64 / baseline.total_cycles as f64
        }
    }

    /// Speedup of this run relative to a slower reference:
    /// `reference.total / self.total`.
    pub fn speedup_vs(&self, reference: &SimStats) -> f64 {
        if self.total_cycles == 0 {
            f64::INFINITY
        } else {
            reference.total_cycles as f64 / self.total_cycles as f64
        }
    }

    /// Recomputes the energy field from counters and the model.
    pub fn set_energy(&mut self, model: &EnergyModel, counters: &EnergyCounters, elapsed_ns: f64) {
        self.energy_mj = model.total_mj(counters, elapsed_ns);
    }
}

/// Geometric mean of a slice of positive values (the paper reports gmean
/// across the ten workloads). Returns 0 for an empty slice.
pub fn gmean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_partition_total() {
        let s = SimStats {
            total_cycles: 1000,
            data_cycles: 600,
            dri_cycles: 400,
            ..Default::default()
        };
        assert!((s.data_fraction() - 0.6).abs() < 1e-12);
        assert!((s.dri_fraction() - 0.4).abs() < 1e-12);
        assert!((s.data_fraction() + s.dri_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slowdown_and_speedup_are_inverse() {
        let fast = SimStats { total_cycles: 500, ..Default::default() };
        let slow = SimStats { total_cycles: 1500, ..Default::default() };
        assert!((slow.slowdown_vs(&fast) - 3.0).abs() < 1e-12);
        assert!((fast.speedup_vs(&slow) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_baseline_is_infinite() {
        let s = SimStats { total_cycles: 10, ..Default::default() };
        let z = SimStats::default();
        assert!(s.slowdown_vs(&z).is_infinite());
    }

    #[test]
    fn gmean_basics() {
        assert_eq!(gmean(&[]), 0.0);
        assert!((gmean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((gmean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((gmean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }
}

//! Simulation statistics: the paper's Eq. 1 decomposition
//! (`total = data access time + DRI`), energy, and derived metrics.

use oram_dram::{ChannelStats, EnergyCounters, EnergyModel};
use oram_protocol::OramStats;

/// Timing and event statistics for one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    /// Total execution time in CPU cycles.
    pub total_cycles: u64,
    /// Cycles during which a *real data* ORAM request occupied the memory
    /// system (path reads plus piggybacked evictions).
    pub data_cycles: u64,
    /// Everything else — the paper's DRI: idle intervals plus dummy
    /// requests (`total - data`).
    pub dri_cycles: u64,
    /// Real ORAM requests serviced via path access.
    pub data_requests: u64,
    /// Requests served on chip (stash/treetop) without memory traffic.
    pub onchip_served: u64,
    /// Dummy ORAM requests injected (timing protection).
    pub dummy_requests: u64,
    /// LLC misses consumed from the workload.
    pub misses_consumed: u64,
    /// DRAM energy in millijoules (dynamic + background over total time).
    pub energy_mj: f64,
    /// Final ORAM controller statistics.
    pub oram: OramStats,
    /// Final DRAM scheduling statistics.
    pub dram: ChannelStats,
}

impl SimStats {
    /// Fraction of total time spent in real data requests.
    pub fn data_fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.data_cycles as f64 / self.total_cycles as f64
        }
    }

    /// Fraction of total time that is DRI (Eq. 1 residual).
    pub fn dri_fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.dri_cycles as f64 / self.total_cycles as f64
        }
    }

    /// Slowdown of this run relative to a baseline run (e.g. the insecure
    /// system): `self.total / baseline.total`.
    pub fn slowdown_vs(&self, baseline: &SimStats) -> f64 {
        if baseline.total_cycles == 0 {
            f64::INFINITY
        } else {
            self.total_cycles as f64 / baseline.total_cycles as f64
        }
    }

    /// Speedup of this run relative to a slower reference:
    /// `reference.total / self.total`.
    pub fn speedup_vs(&self, reference: &SimStats) -> f64 {
        if self.total_cycles == 0 {
            f64::INFINITY
        } else {
            reference.total_cycles as f64 / self.total_cycles as f64
        }
    }

    /// Recomputes the energy field from counters and the model.
    pub fn set_energy(&mut self, model: &EnergyModel, counters: &EnergyCounters, elapsed_ns: f64) {
        self.energy_mj = model.total_mj(counters, elapsed_ns);
    }
}

/// A dense integer histogram over a bounded domain, used for the
/// per-access stash-occupancy distribution (Path ORAM's security
/// parameter is exactly the tail of this histogram).
///
/// ```
/// use oram_sim::Histogram;
/// let mut h = Histogram::with_max(10);
/// for v in [1, 2, 2, 3] { h.record(v); }
/// assert_eq!(h.max(), 3);
/// assert_eq!(h.quantile(0.5), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// A histogram over `0..=max_value`; values above saturate into the
    /// top bin. Allocates once, so per-sample recording is free.
    pub fn with_max(max_value: usize) -> Self {
        Histogram { counts: vec![0; max_value + 1], total: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, value: usize) {
        let ix = value.min(self.counts.len() - 1);
        self.counts[ix] += 1;
        self.total += 1;
    }

    /// Number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest value observed (0 for an empty histogram).
    pub fn max(&self) -> usize {
        self.counts.iter().rposition(|&c| c > 0).unwrap_or(0)
    }

    /// Smallest value `v` with `P(sample <= v) >= q` — the `q`-quantile
    /// of the recorded distribution (0 for an empty histogram).
    pub fn quantile(&self, q: f64) -> usize {
        let need = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut cum = 0u64;
        for (v, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= need {
                return v;
            }
        }
        self.max()
    }

    /// The 99.9th percentile, the tail the paper's stash-overflow
    /// argument cares about.
    pub fn p999(&self) -> usize {
        self.quantile(0.999)
    }

    /// Folds `other` into `self` bin by bin, so parallel sweep workers can
    /// each record locally and combine afterwards. The merged histogram is
    /// identical to one that recorded both sample streams directly: if the
    /// domains differ, the result covers the larger one, and bins beyond
    /// the *other* histogram's top bin keep saturating there (matching
    /// what [`Histogram::record`] did at recording time).
    pub fn merge(&mut self, other: &Histogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (v, &c) in other.counts.iter().enumerate() {
            self.counts[v] += c;
        }
        self.total += other.total;
    }

    /// Mean of the recorded samples.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self.counts.iter().enumerate().map(|(v, &c)| v as u64 * c).sum();
        sum as f64 / self.total as f64
    }
}

/// Geometric mean of a slice of positive values (the paper reports gmean
/// across the ten workloads). Returns 0 for an empty slice.
pub fn gmean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_partition_total() {
        let s = SimStats {
            total_cycles: 1000,
            data_cycles: 600,
            dri_cycles: 400,
            ..Default::default()
        };
        assert!((s.data_fraction() - 0.6).abs() < 1e-12);
        assert!((s.dri_fraction() - 0.4).abs() < 1e-12);
        assert!((s.data_fraction() + s.dri_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slowdown_and_speedup_are_inverse() {
        let fast = SimStats { total_cycles: 500, ..Default::default() };
        let slow = SimStats { total_cycles: 1500, ..Default::default() };
        assert!((slow.slowdown_vs(&fast) - 3.0).abs() < 1e-12);
        assert!((fast.speedup_vs(&slow) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_baseline_is_infinite() {
        let s = SimStats { total_cycles: 10, ..Default::default() };
        let z = SimStats::default();
        assert!(s.slowdown_vs(&z).is_infinite());
    }

    #[test]
    fn histogram_quantiles_and_max() {
        let mut h = Histogram::with_max(20);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p999(), 0);
        for _ in 0..999 {
            h.record(3);
        }
        h.record(17);
        assert_eq!(h.total(), 1000);
        assert_eq!(h.max(), 17);
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.p999(), 3, "the single outlier sits beyond p99.9");
        assert_eq!(h.quantile(1.0), 17);
        assert!((h.mean() - (3.0 * 999.0 + 17.0) / 1000.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_saturates_out_of_range_values() {
        let mut h = Histogram::with_max(4);
        h.record(100);
        assert_eq!(h.max(), 4);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn histogram_merge_equals_direct_recording() {
        // Recording two streams separately and merging must equal
        // recording the concatenated stream into one histogram.
        let stream_a: Vec<usize> = (0..200).map(|i| (i * 7) % 13).collect();
        let stream_b: Vec<usize> = (0..300).map(|i| (i * 11) % 19).collect();
        let mut direct = Histogram::with_max(20);
        let mut a = Histogram::with_max(20);
        let mut b = Histogram::with_max(20);
        for &v in &stream_a {
            direct.record(v);
            a.record(v);
        }
        for &v in &stream_b {
            direct.record(v);
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a, direct);
        assert_eq!(a.total(), 500);
        for q in [0.0, 0.25, 0.5, 0.9, 0.999, 1.0] {
            assert_eq!(a.quantile(q), direct.quantile(q), "q={q}");
        }
        assert_eq!(a.max(), direct.max());
        assert!((a.mean() - direct.mean()).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_widens_to_larger_domain() {
        let mut narrow = Histogram::with_max(4);
        narrow.record(100); // saturates into bin 4
        let mut wide = Histogram::with_max(50);
        wide.record(40);
        narrow.merge(&wide);
        assert_eq!(narrow.total(), 2);
        assert_eq!(narrow.max(), 40, "wide sample keeps its true value");
        assert_eq!(narrow.quantile(0.25), 4, "saturated sample stays in bin 4");
        // Merging the narrow one into the wide one also works and agrees.
        let mut narrow2 = Histogram::with_max(4);
        narrow2.record(100);
        wide.merge(&narrow2);
        assert_eq!(wide.total(), 2);
        assert_eq!(wide.max(), 40);
    }

    #[test]
    fn histogram_merge_empty_is_identity() {
        let mut h = Histogram::with_max(8);
        h.record(3);
        h.record(5);
        let before = h.clone();
        h.merge(&Histogram::with_max(8));
        assert_eq!(h, before);
        let mut empty = Histogram::with_max(8);
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn gmean_basics() {
        assert_eq!(gmean(&[]), 0.0);
        assert!((gmean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((gmean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((gmean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }
}

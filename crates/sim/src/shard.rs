//! Sharded ORAM backend: the address space partitioned across `M`
//! independent subtree shards, each owning its own tree, stash, position
//! map slice, eviction cadence and private DRAM channels, served
//! concurrently through the [`crate::parallel_map`] scoped-thread pool.
//!
//! The shard map is public-by-design (`addr mod M`, like the partition
//! in partition-based ORAMs): which shard serves a request leaks only
//! `addr mod M`, a function of the *public* address identity an
//! adversary already sees the frequency profile of. What must not leak
//! is anything beyond that — each shard's bus trace must remain a valid
//! oblivious ORAM trace on its own, and the interleaving/timing of shard
//! completions must depend only on the dispatch counts, not on which
//! addresses map where. `oram-audit` checks both (per-shard `check_trace`
//! plus the cross-shard distinguisher).
//!
//! Determinism: for a fixed `(seed, M)` the result is bit-identical at
//! any thread count. Requests are partitioned to shards in input order
//! before any of them runs, each shard serves its sub-batch sequentially
//! on its own engine (own RNG stream, seeded from the master seed and
//! the shard index), and outcomes are scattered back by input position —
//! the pool only changes *when* a shard's sub-batch runs, never what it
//! computes.

use std::sync::Mutex;

use oram_storage::{DramBackend, StorageBackend};
use oram_util::ServeClass;

use crate::config::SystemConfig;
use crate::engine::{Engine, ServeOutcome};
use crate::pool::parallel_map;
use crate::stats::SimStats;

/// One request entering the sharded backend: a global block address, the
/// read/write direction and the cycle it reached the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRequest {
    /// Global (pre-sharding) block address.
    pub addr: u64,
    /// `true` for writes.
    pub write: bool,
    /// CPU cycle the request arrived at the memory system.
    pub arrival: u64,
}

/// Deliberate shard-layer fault for auditor validation (test-only):
/// compiled only under the `mutants` cargo feature, which nothing but
/// audit dev-dependencies enables.
#[cfg(feature = "mutants")]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardMutant {
    /// No fault: the honest `addr mod M` mapping.
    #[default]
    None,
    /// Collapses the address→shard mapping onto the lower half of the
    /// shards — the "sharding function lost a bit" class of bug.
    /// Externally visible only through the dispatch-load distribution.
    ShardSkew,
}

/// A request queued for one shard: the shard-local address plus the
/// position of the request in the caller's batch, so outcomes scatter
/// back in input order.
#[derive(Debug, Clone, Copy)]
struct SubRequest {
    local_addr: u64,
    write: bool,
    arrival: u64,
    index: usize,
}

/// `M` independent ORAM engines behind one dispatch front, generic over
/// the storage backend each shard's engine runs on (default: the
/// private-DRAM-channel model).
///
/// Each shard is a full [`Engine`] — controller, stash, posmap, private
/// storage backend (its own channels or store: shard affinity) — serving
/// the shard-local address space `addr / M` of the global addresses with
/// `addr mod M == shard`. Shards advance on their own clocks; the global
/// clock reported by [`ShardedOram::cycle`] is the earliest shard clock
/// (the soonest a new request could start somewhere).
#[derive(Debug)]
pub struct ShardedOram<B: StorageBackend = DramBackend> {
    /// Engines behind mutexes so the scoped-thread pool can serve
    /// disjoint shards concurrently; each batch locks every shard at
    /// most once, and never the same shard from two workers.
    lanes: Vec<Mutex<Engine<B>>>,
    threads: usize,
    /// Per-shard request buffers, cleared per batch, capacity retained.
    sub_reqs: Vec<Vec<SubRequest>>,
    /// Shard indices `0..M`, preallocated as the pool's job list.
    indices: Vec<usize>,
    /// Requests dispatched to each shard since construction (or the last
    /// [`ShardedOram::reset_dispatch_counts`]).
    dispatch_counts: Vec<u64>,
    #[cfg(feature = "mutants")]
    mutant: ShardMutant,
}

/// Per-shard RNG stream: a SplitMix64-style scramble of the master seed
/// and the shard index, so shards draw from disjoint, uncorrelated
/// streams while staying a pure function of `(seed, shard)`.
fn shard_seed(master: u64, shard: usize) -> u64 {
    let mut x = master ^ (shard as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl ShardedOram<DramBackend> {
    /// Builds `shards` engines over the default DRAM backend from the
    /// per-shard configuration template `cfg`, serving batches on up to
    /// `threads` pool workers.
    ///
    /// With `shards == 1` the single engine keeps `cfg.oram.seed`
    /// verbatim, so a one-shard backend is the plain [`Engine`] behind a
    /// dispatch front; with more shards each engine gets its own derived
    /// seed stream.
    ///
    /// # Errors
    ///
    /// Returns a validation error for `shards == 0` or an invalid `cfg`.
    pub fn new(cfg: SystemConfig, shards: usize, threads: usize) -> Result<Self, String> {
        let dram = cfg.dram;
        Self::with_backend_factory(cfg, shards, threads, move |_| DramBackend::new(dram))
    }
}

impl<B: StorageBackend> ShardedOram<B> {
    /// Builds `shards` engines, constructing each shard's private
    /// storage backend with `make_backend(shard_index)` — e.g. a
    /// file-per-shard disk directory, or per-shard WAN links.
    /// Seed derivation and dispatch behave exactly as
    /// [`ShardedOram::new`].
    ///
    /// # Errors
    ///
    /// Returns a validation error for `shards == 0`, an invalid `cfg`,
    /// or any backend construction failure.
    pub fn with_backend_factory(
        cfg: SystemConfig,
        shards: usize,
        threads: usize,
        mut make_backend: impl FnMut(usize) -> Result<B, String>,
    ) -> Result<Self, String> {
        if shards == 0 {
            return Err("shard count must be at least 1".into());
        }
        let mut lanes = Vec::with_capacity(shards);
        for i in 0..shards {
            let mut shard_cfg = cfg.clone();
            if shards > 1 {
                shard_cfg.oram.seed = shard_seed(cfg.oram.seed, i);
            }
            lanes.push(Mutex::new(Engine::with_backend(shard_cfg, make_backend(i)?)?));
        }
        Ok(ShardedOram {
            lanes,
            threads: threads.max(1),
            sub_reqs: (0..shards).map(|_| Vec::new()).collect(),
            indices: (0..shards).collect(),
            dispatch_counts: vec![0; shards],
            #[cfg(feature = "mutants")]
            mutant: ShardMutant::None,
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.lanes.len()
    }

    /// Worker threads used per batch.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Injects a deliberate shard-layer fault (auditor validation only).
    #[cfg(feature = "mutants")]
    pub fn set_mutant(&mut self, mutant: ShardMutant) {
        self.mutant = mutant;
    }

    /// The shard serving a global address.
    pub fn shard_of(&self, addr: u64) -> usize {
        #[cfg(feature = "mutants")]
        if self.mutant == ShardMutant::ShardSkew {
            return ((addr % self.lanes.len() as u64) / 2) as usize;
        }
        (addr % self.lanes.len() as u64) as usize
    }

    /// The shard-local address of a global address (`addr / M`: dense per
    /// shard under the honest `addr mod M` dispatch).
    fn local_addr(&self, addr: u64) -> u64 {
        addr / self.lanes.len() as u64
    }

    /// Pre-installs the working set `0..blocks` (global addresses) across
    /// the shards, mirroring [`Engine::prefill_working_set`].
    pub fn prefill_working_set(&mut self, blocks: u64) {
        let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); self.lanes.len()];
        for addr in 0..blocks {
            per_shard[self.shard_of(addr)].push(self.local_addr(addr));
        }
        for (lane, addrs) in self.lanes.iter_mut().zip(per_shard) {
            let engine = lane.get_mut().expect("shard engine poisoned");
            engine.controller_mut().prefill(
                addrs.into_iter().map(|a| (oram_protocol::BlockAddr::new(a), 0)),
            );
        }
    }

    /// Preallocates the per-shard dispatch buffers for batches of up to
    /// `n` requests, so steady-state [`ShardedOram::serve_batch`] calls
    /// never touch the allocator (the zero-allocation bench gates on
    /// this at one worker thread).
    pub fn reserve_batch(&mut self, n: usize) {
        for sub in &mut self.sub_reqs {
            sub.reserve(n);
        }
    }

    /// Serves one batch of requests and scatters the outcomes back into
    /// `outs` in input order (`outs` is cleared and refilled; with enough
    /// capacity the call does not allocate at `threads == 1`).
    ///
    /// Dispatch is deterministic: requests partition to shards in input
    /// order before any shard runs, each shard serves its sub-batch
    /// sequentially on its own engine, and the pool only parallelizes
    /// *across* shards — so the outcome is a pure function of
    /// `(seed, M, batch)` at any thread count.
    pub fn serve_batch(&mut self, reqs: &[ShardRequest], outs: &mut Vec<ServeOutcome>) {
        for sub in &mut self.sub_reqs {
            sub.clear();
        }
        for (index, r) in reqs.iter().enumerate() {
            let shard = self.shard_of(r.addr);
            let local_addr = self.local_addr(r.addr);
            self.dispatch_counts[shard] += 1;
            self.sub_reqs[shard].push(SubRequest {
                local_addr,
                write: r.write,
                arrival: r.arrival,
                index,
            });
        }

        outs.clear();
        outs.resize(
            reqs.len(),
            ServeOutcome { data_ready: 0, end: 0, served: ServeClass::Stash, touched_dram: false },
        );

        let workers = self.threads.min(self.lanes.len());
        if workers <= 1 {
            // Inline path: no pool, no locking overhead, no allocation.
            for (lane, sub) in self.lanes.iter_mut().zip(&self.sub_reqs) {
                let engine = lane.get_mut().expect("shard engine poisoned");
                for r in sub {
                    outs[r.index] = engine.serve_request(r.local_addr, r.write, r.arrival);
                }
            }
            return;
        }

        let lanes = &self.lanes;
        let sub_reqs = &self.sub_reqs;
        let served: Vec<Vec<(usize, ServeOutcome)>> =
            parallel_map(workers, &self.indices, |&shard| {
                let mut engine = lanes[shard].lock().expect("shard engine poisoned");
                sub_reqs[shard]
                    .iter()
                    .map(|r| (r.index, engine.serve_request(r.local_addr, r.write, r.arrival)))
                    .collect()
            });
        for (index, out) in served.into_iter().flatten() {
            outs[index] = out;
        }
    }

    /// Serves a single request inline (warmup and diagnostics; batches
    /// are the throughput path).
    pub fn serve_request(&mut self, addr: u64, write: bool, arrival: u64) -> ServeOutcome {
        let shard = self.shard_of(addr);
        self.dispatch_counts[shard] += 1;
        let local = self.local_addr(addr);
        let engine = self.lanes[shard].get_mut().expect("shard engine poisoned");
        engine.serve_request(local, write, arrival)
    }

    /// The global clock: how far the backend has advanced — the latest
    /// shard clock. Shards only advance while serving, so this is the
    /// finish time of the furthest-ahead shard, the natural admission
    /// horizon for a front-end driving the backend.
    pub fn cycle(&self) -> u64 {
        self.lanes
            .iter()
            .map(|l| l.lock().expect("shard engine poisoned").cycle())
            .max()
            .unwrap_or(0)
    }

    /// One shard's clock.
    pub fn shard_cycle(&self, shard: usize) -> u64 {
        self.lanes[shard].lock().expect("shard engine poisoned").cycle()
    }

    /// Mutable access to one shard's engine (telemetry and observer
    /// attachment, prefill, diagnostics).
    pub fn engine_mut(&mut self, shard: usize) -> &mut Engine<B> {
        self.lanes[shard].get_mut().expect("shard engine poisoned")
    }

    /// Requests dispatched to each shard so far. Under a uniform address
    /// mix and the honest mapping these loads are statistically uniform —
    /// the property the audit's cross-shard distinguisher checks.
    pub fn dispatch_counts(&self) -> &[u64] {
        &self.dispatch_counts
    }

    /// Zeroes the dispatch counters (e.g. after warmup, so a
    /// distribution check sees only the measured window).
    pub fn reset_dispatch_counts(&mut self) {
        self.dispatch_counts.iter_mut().for_each(|c| *c = 0);
    }

    /// Completes the Eq. 1 accounting on every shard and returns the
    /// merged statistics (see [`ShardedOram::merge_stats`]).
    pub fn finish(&mut self) -> SimStats {
        let per_shard: Vec<SimStats> = self
            .lanes
            .iter_mut()
            .map(|l| l.get_mut().expect("shard engine poisoned").finish())
            .collect();
        Self::merge_stats(&per_shard)
    }

    /// Statistics of one shard (valid after [`ShardedOram::finish`]).
    pub fn shard_stats(&self, shard: usize) -> SimStats {
        self.lanes[shard].lock().expect("shard engine poisoned").stats()
    }

    /// Folds per-shard statistics into one global view on the merged
    /// clock: `total_cycles` is the wall clock (the run ends when the
    /// slowest shard drains), event counters and energy sum, and
    /// `data_cycles` sums each shard's busy time — aggregate backend
    /// occupancy, which can exceed the wall clock when shards genuinely
    /// overlap. The Eq. 1 residual `dri_cycles` is therefore computed
    /// against the wall clock and saturates at zero; the exact per-shard
    /// Eq. 1 decomposition stays available via
    /// [`ShardedOram::shard_stats`].
    pub fn merge_stats(per_shard: &[SimStats]) -> SimStats {
        let mut merged = SimStats::default();
        for s in per_shard {
            merged.total_cycles = merged.total_cycles.max(s.total_cycles);
            merged.data_cycles += s.data_cycles;
            merged.data_requests += s.data_requests;
            merged.onchip_served += s.onchip_served;
            merged.dummy_requests += s.dummy_requests;
            merged.misses_consumed += s.misses_consumed;
            merged.energy_mj += s.energy_mj;
            merge_oram(&mut merged.oram, &s.oram);
            merge_dram(&mut merged.dram, &s.dram);
        }
        merged.dri_cycles = merged.total_cycles.saturating_sub(merged.data_cycles);
        merged
    }
}

/// Sums every counter of one shard's controller statistics into `acc`.
fn merge_oram(acc: &mut oram_protocol::OramStats, s: &oram_protocol::OramStats) {
    acc.real_requests += s.real_requests;
    acc.dummy_requests += s.dummy_requests;
    acc.stash_served += s.stash_served;
    acc.replaceable_stash_served += s.replaceable_stash_served;
    acc.shadow_stash_served += s.shadow_stash_served;
    acc.treetop_served += s.treetop_served;
    acc.shadow_advanced += s.shadow_advanced;
    acc.dram_served += s.dram_served;
    acc.fresh_served += s.fresh_served;
    acc.served_position_sum += s.served_position_sum;
    acc.real_position_sum += s.real_position_sum;
    acc.ro_path_reads += s.ro_path_reads;
    acc.evictions += s.evictions;
    acc.rd_shadows_written += s.rd_shadows_written;
    acc.hd_shadows_written += s.hd_shadows_written;
    acc.real_blocks_written += s.real_blocks_written;
    acc.dummy_blocks_written += s.dummy_blocks_written;
    acc.stale_discarded += s.stale_discarded;
    acc.stash_shadow_candidates += s.stash_shadow_candidates;
    acc.recirculated_shadows += s.recirculated_shadows;
}

/// Sums every counter of one shard's DRAM statistics into `acc`.
fn merge_dram(acc: &mut oram_dram::ChannelStats, s: &oram_dram::ChannelStats) {
    acc.reads += s.reads;
    acc.writes += s.writes;
    acc.row_hits += s.row_hits;
    acc.row_misses += s.row_misses;
    acc.row_conflicts += s.row_conflicts;
    acc.activates += s.activates;
    acc.precharges += s.precharges;
    acc.refreshes += s.refreshes;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(n: u64, domain: u64) -> Vec<ShardRequest> {
        (0..n)
            .map(|i| ShardRequest {
                addr: (i * 131) % domain,
                write: i % 5 == 0,
                arrival: i * 40,
            })
            .collect()
    }

    #[test]
    fn one_shard_matches_the_plain_engine() {
        let cfg = SystemConfig::small_test();
        let mut plain = Engine::new(cfg.clone()).unwrap();
        plain.prefill_working_set(96);
        let mut sharded = ShardedOram::new(cfg, 1, 1).unwrap();
        sharded.prefill_working_set(96);

        let reqs = batch(400, 96);
        let mut outs = Vec::new();
        sharded.serve_batch(&reqs, &mut outs);
        for (i, r) in reqs.iter().enumerate() {
            let want = plain.serve_request(r.addr, r.write, r.arrival);
            assert_eq!(outs[i], want, "request {i}");
        }
        assert_eq!(sharded.finish(), plain.finish());
    }

    #[test]
    fn outcomes_are_thread_count_invariant() {
        let reqs = batch(600, 256);
        let mut reference: Option<(Vec<ServeOutcome>, SimStats)> = None;
        for threads in [1usize, 2, 4] {
            let cfg = SystemConfig::small_test();
            let mut sharded = ShardedOram::new(cfg, 4, threads).unwrap();
            sharded.prefill_working_set(256);
            let mut outs = Vec::new();
            // Several batches so per-shard clocks advance between them.
            for chunk in reqs.chunks(64) {
                let mut chunk_outs = Vec::new();
                sharded.serve_batch(chunk, &mut chunk_outs);
                outs.extend(chunk_outs);
            }
            let stats = sharded.finish();
            match &reference {
                None => reference = Some((outs, stats)),
                Some((want_outs, want_stats)) => {
                    assert_eq!(&outs, want_outs, "threads={threads}");
                    assert_eq!(&stats, want_stats, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn dispatch_balances_a_uniform_mix() {
        let mut sharded = ShardedOram::new(SystemConfig::small_test(), 4, 1).unwrap();
        sharded.prefill_working_set(256);
        let reqs = batch(1000, 256);
        let mut outs = Vec::new();
        sharded.serve_batch(&reqs, &mut outs);
        let counts = sharded.dispatch_counts();
        assert_eq!(counts.iter().sum::<u64>(), 1000);
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 150, "shard {i} starved: {c}");
        }
        sharded.reset_dispatch_counts();
        assert!(sharded.dispatch_counts().iter().all(|&c| c == 0));
    }

    #[test]
    fn merged_stats_take_the_wall_clock_and_sum_counters() {
        let a = SimStats {
            total_cycles: 1000,
            data_cycles: 700,
            data_requests: 10,
            misses_consumed: 12,
            ..Default::default()
        };
        let b = SimStats {
            total_cycles: 1400,
            data_cycles: 900,
            data_requests: 14,
            misses_consumed: 14,
            ..Default::default()
        };
        let m = ShardedOram::<DramBackend>::merge_stats(&[a, b]);
        assert_eq!(m.total_cycles, 1400);
        assert_eq!(m.data_cycles, 1600);
        assert_eq!(m.dri_cycles, 0, "aggregate busy time exceeds the wall clock");
        assert_eq!(m.data_requests, 24);
        assert_eq!(m.misses_consumed, 26);
    }

    #[test]
    fn shards_draw_distinct_seed_streams() {
        assert_ne!(shard_seed(7, 0), shard_seed(7, 1));
        assert_ne!(shard_seed(7, 0), shard_seed(8, 0));
        assert_eq!(shard_seed(7, 3), shard_seed(7, 3));
    }

    #[test]
    fn zero_shards_is_rejected() {
        assert!(ShardedOram::new(SystemConfig::small_test(), 0, 1).is_err());
    }
}

//! Attribution completeness, as a randomized property: over randomized
//! configurations and workloads, every span's cycle attribution must
//! partition its duration exactly (no unattributed cycles, no double
//! counting), and the duplication credits must be mutually exclusive
//! and tied to the serve class that earns them.
//!
//! Cases are deterministically seeded with the in-repo [`Rng64`], so a
//! failure reproduces exactly without an external property-testing
//! framework.

use oram_protocol::DupPolicy;
use oram_sim::{run_workload_traced, RunOptions, SystemConfig};
use oram_telemetry::{validate_attribution, TelemetryConfig, TelemetryRecorder};
use oram_util::{Rng64, ServeClass};
use oram_workloads::spec;

const CASES: u64 = 24;

fn random_policy(rng: &mut Rng64) -> DupPolicy {
    match rng.below(4) {
        0 => DupPolicy::Off,
        1 => DupPolicy::RdOnly,
        2 => DupPolicy::HdOnly,
        _ => DupPolicy::Dynamic { counter_bits: 2 + rng.below(3) as u32 },
    }
}

/// Components sum exactly to the span duration on every access of
/// every randomized run, and credits only appear on eligible serves.
#[test]
fn attribution_partitions_every_span_exactly() {
    let mut rng = Rng64::seed_from_u64(0xa77);
    let workloads = spec::WORKLOAD_NAMES;
    for case in 0..CASES {
        let mut cfg = SystemConfig::small_test();
        cfg.oram.levels = 8 + rng.below(5) as u32;
        cfg.oram.dup_policy = random_policy(&mut rng);
        cfg.xor_compression = rng.below(3) == 0;
        cfg.timing_protection = if rng.below(2) == 0 { Some(40 + rng.below(60)) } else { None };
        cfg.validate().expect("randomized config stays valid");

        let workload = workloads[rng.below(workloads.len() as u64) as usize];
        let ro = RunOptions {
            misses: 150 + rng.below(250),
            warmup_misses: rng.below(80),
            seed: rng.next_u64(),
            fill_target: 0.25 + 0.2 * (rng.below(3) as f64 / 2.0),
            o3: None,
        };

        let rec = TelemetryRecorder::shared(TelemetryConfig::default());
        let r = run_workload_traced(
            &spec::profile(workload),
            &cfg,
            &ro,
            TelemetryRecorder::as_sink(&rec),
            10_000,
        );
        let rec = rec.lock().unwrap();
        let ctx = format!(
            "case {case}: workload={workload} policy={:?} levels={} xor={} misses={}",
            cfg.oram.dup_policy, cfg.oram.levels, cfg.xor_compression, ro.misses
        );

        // The shared validator is the shipped invariant; assert the
        // pieces by hand too so a failure names the broken component.
        validate_attribution(rec.spans()).unwrap_or_else(|e| panic!("{ctx}: {e}"));
        assert!(rec.spans().total_pushed() > 0, "{ctx}: run produced no spans");
        for s in rec.spans().iter() {
            let a = &s.attr;
            let busy = a.dram_queue + a.dram_row + a.network + a.dram_bus + a.eviction;
            if s.phase_len == 0 {
                // On-chip serves never touch the bus: nothing to attribute.
                assert_eq!(busy, 0, "{ctx}: on-chip span {} carries bus attribution", s.seq);
            } else {
                assert_eq!(
                    busy,
                    s.end - s.start,
                    "{ctx}: span {} has unattributed cycles",
                    s.seq
                );
            }
            // Credits are mutually exclusive and class-gated.
            assert!(
                a.forward_saved == 0 || a.stash_pull_credit == 0,
                "{ctx}: span {} claims both duplication credits",
                s.seq
            );
            if a.forward_saved > 0 {
                assert_eq!(
                    s.served,
                    ServeClass::DramShadow,
                    "{ctx}: span {} saved forward cycles without a shadow serve",
                    s.seq
                );
            }
            if a.stash_pull_credit > 0 {
                assert_eq!(
                    s.served,
                    ServeClass::Stash,
                    "{ctx}: span {} took a stash-pull credit off the stash",
                    s.seq
                );
            }
        }

        // Attribution over the span stream never exceeds the run: the
        // spans partition the busy portion, idle fills the rest.
        let busy: u64 = rec
            .spans()
            .iter()
            .map(|s| {
                s.attr.dram_queue + s.attr.dram_row + s.attr.network + s.attr.dram_bus
                    + s.attr.eviction
            })
            .sum();
        assert!(
            busy <= r.oram.total_cycles,
            "{ctx}: attributed {busy} cycles of a {}-cycle run",
            r.oram.total_cycles
        );
    }
}

/// The Tiny baseline earns no duplication credit; RD-Dup shows early
/// forwarding on a duplication-friendly run.
#[test]
fn credits_follow_the_duplication_policy() {
    for (policy, expect_any) in [(DupPolicy::Off, false), (DupPolicy::RdOnly, true)] {
        let mut cfg = SystemConfig::small_test();
        cfg.oram.dup_policy = policy;
        cfg.validate().unwrap();
        let ro = RunOptions { misses: 600, warmup_misses: 150, seed: 9, fill_target: 0.3, o3: None };
        let rec = TelemetryRecorder::shared(TelemetryConfig::default());
        run_workload_traced(
            &spec::profile("mcf"),
            &cfg,
            &ro,
            TelemetryRecorder::as_sink(&rec),
            10_000,
        );
        let rec = rec.lock().unwrap();
        let saved: u64 = rec.spans().iter().map(|s| s.attr.forward_saved).sum();
        let credit: u64 = rec.spans().iter().map(|s| s.attr.stash_pull_credit).sum();
        if expect_any {
            assert!(saved > 0, "{policy:?}: RD-Dup must save forward cycles");
        } else {
            assert_eq!(saved, 0, "{policy:?}: baseline saved cycles it cannot have");
            assert_eq!(credit, 0, "{policy:?}: baseline credited a stash pull");
        }
    }
}

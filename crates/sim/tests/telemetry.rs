//! Engine/runner telemetry contract: the span stream and time-series
//! windows emitted during a traced run must tie out exactly against the
//! `SimStats` the run returns, and tracing must not perturb the
//! simulation itself.

use oram_sim::{run_workload, run_workload_traced, RunOptions, SystemConfig};
use oram_telemetry::export::{
    spans_to_chrome_trace, spans_to_jsonl, validate_chrome_trace, validate_jsonl,
};
use oram_telemetry::timeseries::validate_timeseries_csv;
use oram_telemetry::{TelemetryConfig, TelemetryRecorder};
use oram_util::MetricId;
use oram_workloads::spec;

fn opts() -> RunOptions {
    RunOptions { misses: 400, warmup_misses: 120, seed: 11, fill_target: 0.3, o3: None }
}

#[test]
fn traced_run_ties_out_against_sim_stats() {
    let cfg = SystemConfig::small_test();
    let rec = TelemetryRecorder::shared(TelemetryConfig::default());
    let r = run_workload_traced(
        &spec::profile("mcf"),
        &cfg,
        &opts(),
        TelemetryRecorder::as_sink(&rec),
        5_000,
    );
    let s = r.oram;
    let rec = rec.lock().unwrap();

    // One span per measured access: real (path or on-chip) plus dummies.
    let expected_spans = s.data_requests + s.onchip_served + s.dummy_requests;
    assert!(expected_spans > 0);
    assert_eq!(rec.spans().total_pushed(), expected_spans);
    assert_eq!(rec.spans().dropped(), 0, "default ring holds a quick run");

    // Windows partition the measured interval: contiguous, and their
    // deltas sum back to the run's Eq. 1 totals.
    let windows = rec.series().windows();
    assert!(windows.len() >= 2, "5k-cycle windows must tick on this run");
    for w in windows.windows(2) {
        assert_eq!(w[0].end_cycle, w[1].start_cycle, "windows are contiguous");
    }
    let span_cycles: u64 = windows.iter().map(|w| w.end_cycle - w.start_cycle).sum();
    assert_eq!(span_cycles, s.total_cycles);
    assert_eq!(rec.series().total(|w| w.data_cycles), s.data_cycles);
    assert_eq!(rec.series().total(|w| w.dri_cycles), s.dri_cycles);
    assert_eq!(rec.series().total(|w| w.data_requests), s.data_requests);
    assert_eq!(rec.series().total(|w| w.onchip_served), s.onchip_served);
    assert_eq!(rec.series().total(|w| w.dummy_requests), s.dummy_requests);

    // The metric stream saw exactly the measured window: every real
    // access lands in one serve class, so the classes sum to the real
    // request count (warmup excluded).
    let m = rec.metrics();
    let served = m.counter(MetricId::StashHitReal)
        + m.counter(MetricId::StashHitReplaceable)
        + m.counter(MetricId::TreetopServed)
        + m.counter(MetricId::DramServedReal)
        + m.counter(MetricId::DramServedShadow)
        + m.counter(MetricId::FreshServed);
    assert_eq!(served, s.data_requests + s.onchip_served);
    assert!(m.counter(MetricId::Evictions) > 0);

    // Both export formats validate on real data.
    let jsonl = spans_to_jsonl(rec.spans());
    assert_eq!(validate_jsonl(&jsonl).expect("schema-valid JSONL"), expected_spans as usize);
    let trace = spans_to_chrome_trace(rec.spans());
    assert!(validate_chrome_trace(&trace).expect("balanced Chrome trace") > 0);
    let csv = rec.series().to_csv();
    assert_eq!(validate_timeseries_csv(&csv).expect("valid time-series CSV"), windows.len());
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let cfg = SystemConfig::small_test();
    let plain = run_workload(&spec::profile("mcf"), &cfg, &opts());
    let rec = TelemetryRecorder::shared(TelemetryConfig::default());
    let traced = run_workload_traced(
        &spec::profile("mcf"),
        &cfg,
        &opts(),
        TelemetryRecorder::as_sink(&rec),
        10_000,
    );
    assert_eq!(plain.oram, traced.oram, "attached sink must not change timing");
    assert_eq!(plain.insecure, traced.insecure);
}

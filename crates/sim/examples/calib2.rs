use oram_cpu::ReplayMisses;
use oram_protocol::DupPolicy;
use oram_sim::{build_miss_stream, scale_profile, Engine, RunOptions, SystemConfig};
use oram_workloads::spec;

fn main() {
    let opts = RunOptions { misses: 6000, warmup_misses: 1500, seed: 7, fill_target: 0.35, o3: None };
    let cfg0 = SystemConfig::scaled_default();
    let p = scale_profile(&spec::profile("hmmer"), &cfg0, 0.35);
    let recs = build_miss_stream(&p, cfg0.hierarchy, &opts);
    for policy in [DupPolicy::HdOnly, DupPolicy::RdOnly] {
        let mut cfg = SystemConfig::scaled_default();
        cfg.oram.dup_policy = policy;
        let mut e = Engine::new(cfg).unwrap();
        e.prefill_working_set(p.working_set_blocks);
        let _ = e.run(&mut ReplayMisses::new(recs.clone()));
        let o = e.controller().stats();
        println!("{policy:?}: evictions={} stash_shadow_cands={} ({:.1}/evict) recirc_written={} ({:.1}/evict) total_sh={}",
            o.evictions, o.stash_shadow_candidates,
            o.stash_shadow_candidates as f64 / o.evictions.max(1) as f64,
            o.recirculated_shadows,
            o.recirculated_shadows as f64 / o.evictions.max(1) as f64,
            o.rd_shadows_written + o.hd_shadows_written);
    }
}

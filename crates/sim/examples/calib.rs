use oram_protocol::DupPolicy;
use oram_sim::{run_workload, RunOptions, SystemConfig};
use oram_workloads::spec;
use std::time::Instant;

fn main() {
    let opts = RunOptions { misses: 4000, warmup_misses: 1000, seed: 7, fill_target: 0.35, o3: None };
    let t0 = Instant::now();
    println!("=== WITH timing protection (800) ===");
    for wl in ["mcf", "hmmer", "sjeng", "h264ref", "namd", "libquantum"] {
        let mut line = format!("{wl:>10}:");
        let mut base_total = 0.0;
        for (label, policy) in [
            ("tiny", DupPolicy::Off),
            ("rd", DupPolicy::RdOnly),
            ("hd", DupPolicy::HdOnly),
            ("st4", DupPolicy::Static { partition_level: 4 }),
            ("dyn3", DupPolicy::Dynamic { counter_bits: 3 }),
        ] {
            let mut cfg = SystemConfig::scaled_default().with_timing_protection(800);
            cfg.oram.dup_policy = policy;
            let r = run_workload(&spec::profile(wl), &cfg, &opts);
            if label == "tiny" { base_total = r.oram.total_cycles as f64; }
            line += &format!(" {label}={:.3}(d{:.2}/i{:.2},adv{},hit{:.2},dum{})",
                r.oram.total_cycles as f64 / base_total,
                r.oram.data_fraction(), r.oram.dri_fraction(),
                r.oram.oram.shadow_advanced, r.oram.oram.on_chip_hit_rate(),
                r.oram.dummy_requests);
        }
        println!("{line}");
    }
    println!("[{:.0}s]", t0.elapsed().as_secs_f64());
}

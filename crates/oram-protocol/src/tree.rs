//! Geometry of the binary ORAM tree.
//!
//! The external memory is logically a complete binary tree with `L + 1`
//! levels (level 0 is the root, level `L` the leaves). Each node is a
//! *bucket* of `Z` block slots. This module provides the index arithmetic —
//! bucket ids, paths, common-prefix levels, the reverse-lexicographic
//! eviction order — and the bucket storage itself.


use crate::types::{Block, LeafLabel};
use oram_util::DetHashMap;

/// Identifier of a bucket: the 1-based heap index of the node
/// (root = 1, children of `i` = `2i` and `2i + 1`).
///
/// Heap indexing keeps level/parent/child arithmetic branch-free, which
/// matters because paths are recomputed on every ORAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BucketId(u64);

impl BucketId {
    /// The root bucket.
    pub const ROOT: BucketId = BucketId(1);

    /// Creates a bucket id from a raw 1-based heap index.
    ///
    /// # Panics
    ///
    /// Panics if `raw` is zero (heap indices start at 1).
    pub fn new(raw: u64) -> Self {
        assert!(raw >= 1, "heap indices are 1-based");
        BucketId(raw)
    }

    /// Returns the raw heap index.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Tree level of this bucket (root is level 0).
    pub fn level(self) -> u32 {
        63 - self.0.leading_zeros()
    }

    /// Parent bucket; `None` for the root.
    pub fn parent(self) -> Option<BucketId> {
        if self.0 == 1 {
            None
        } else {
            Some(BucketId(self.0 >> 1))
        }
    }
}

/// Static geometry of an ORAM tree: number of levels and slots per bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeShape {
    levels: u32,
    slots_per_bucket: usize,
}

impl TreeShape {
    /// Creates a shape with `levels = L` (so the tree has `L + 1` bucket
    /// levels and `2^L` leaves) and `Z = slots_per_bucket`.
    ///
    /// # Panics
    ///
    /// Panics if `levels >= 48` (the bucket count would overflow practical
    /// memory) or `slots_per_bucket == 0`.
    pub fn new(levels: u32, slots_per_bucket: usize) -> Self {
        assert!(levels < 48, "tree too deep to simulate");
        assert!(slots_per_bucket > 0, "buckets need at least one slot");
        TreeShape { levels, slots_per_bucket }
    }

    /// `L`: the index of the leaf level.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// `Z`: block slots per bucket.
    pub fn slots_per_bucket(&self) -> usize {
        self.slots_per_bucket
    }

    /// Number of leaves (`2^L`), which is also the number of distinct
    /// leaf labels.
    pub fn leaf_count(&self) -> u64 {
        1u64 << self.levels
    }

    /// Total bucket count (`2^(L+1) - 1`).
    pub fn bucket_count(&self) -> u64 {
        (1u64 << (self.levels + 1)) - 1
    }

    /// Total block slots in the tree.
    pub fn slot_count(&self) -> u64 {
        self.bucket_count() * self.slots_per_bucket as u64
    }

    /// Blocks read or written by one full path access:
    /// `Z * (L + 1)`.
    pub fn blocks_per_path(&self) -> usize {
        self.slots_per_bucket * (self.levels as usize + 1)
    }

    /// The bucket at `level` on the path to `leaf`.
    ///
    /// # Panics
    ///
    /// Panics if `level > L` or the leaf label is out of range.
    pub fn bucket_on_path(&self, leaf: LeafLabel, level: u32) -> BucketId {
        assert!(level <= self.levels, "level out of range");
        assert!(leaf.raw() < self.leaf_count(), "leaf label out of range");
        // The leaf's heap index is 2^L + leaf; its ancestor at `level`
        // is found by shifting off the lower (L - level) bits.
        let leaf_heap = (1u64 << self.levels) | leaf.raw();
        BucketId(leaf_heap >> (self.levels - level))
    }

    /// The full path root→leaf as bucket ids.
    ///
    /// Allocates a fresh `Vec` per call; the access hot path uses
    /// [`TreeShape::path_into`] with a reusable buffer or
    /// [`TreeShape::path_iter`] instead.
    pub fn path(&self, leaf: LeafLabel) -> Vec<BucketId> {
        let mut buf = Vec::with_capacity(self.levels as usize + 1);
        self.path_into(leaf, &mut buf);
        buf
    }

    /// Writes the path root→leaf into `buf` (cleared first), reusing its
    /// allocation. After the first call on a buffer, subsequent calls for
    /// the same shape never allocate.
    ///
    /// # Panics
    ///
    /// Panics if the leaf label is out of range.
    pub fn path_into(&self, leaf: LeafLabel, buf: &mut Vec<BucketId>) {
        buf.clear();
        buf.extend(self.path_iter(leaf));
    }

    /// Iterates the path root→leaf without materializing it.
    ///
    /// # Panics
    ///
    /// Panics if the leaf label is out of range.
    pub fn path_iter(&self, leaf: LeafLabel) -> PathIter {
        self.path_iter_from(leaf, 0)
    }

    /// Iterates the path to `leaf` starting at `first_level` (used to
    /// skip the on-chip treetop levels without a `skip` adapter).
    ///
    /// # Panics
    ///
    /// Panics if the leaf label is out of range.
    pub fn path_iter_from(&self, leaf: LeafLabel, first_level: u32) -> PathIter {
        assert!(leaf.raw() < self.leaf_count(), "leaf label out of range");
        PathIter {
            leaf_heap: (1u64 << self.levels) | leaf.raw(),
            levels: self.levels,
            next: first_level,
        }
    }

    /// Deepest level shared by the paths to `a` and `b` (the level of their
    /// lowest common ancestor). Level 0 (the root) is always shared.
    pub fn common_level(&self, a: LeafLabel, b: LeafLabel) -> u32 {
        let diff = a.raw() ^ b.raw();
        if diff == 0 {
            self.levels
        } else {
            // Leaves diverge below the highest differing label bit.
            let bit_len = 64 - diff.leading_zeros();
            self.levels - bit_len
        }
    }
}

/// Iterator over the buckets of one root→leaf path (see
/// [`TreeShape::path_iter`]). `Copy` and allocation-free: the whole
/// path is derived by shifting the leaf's heap index.
#[derive(Debug, Clone, Copy)]
pub struct PathIter {
    leaf_heap: u64,
    levels: u32,
    next: u32,
}

impl Iterator for PathIter {
    type Item = BucketId;

    #[inline]
    fn next(&mut self) -> Option<BucketId> {
        if self.next > self.levels {
            return None;
        }
        let id = BucketId(self.leaf_heap >> (self.levels - self.next));
        self.next += 1;
        Some(id)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.levels + 1).saturating_sub(self.next) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for PathIter {}

/// Generator of eviction paths in reverse-lexicographic order.
///
/// Reverse-lexicographic ("bit-reversed counter") eviction spreads
/// consecutive evictions across the tree so that every bucket is refreshed
/// at a deterministic rate; it is the order Tiny ORAM / Ring ORAM use.
#[derive(Debug, Clone)]
pub struct EvictionOrder {
    levels: u32,
    counter: u64,
}

impl EvictionOrder {
    /// Creates the order for a tree with `levels = L` leaves `2^L`.
    pub fn new(levels: u32) -> Self {
        EvictionOrder { levels, counter: 0 }
    }

    /// Returns the next eviction leaf and advances the counter.
    pub fn next_leaf(&mut self) -> LeafLabel {
        let leaf = self.peek();
        self.counter = self.counter.wrapping_add(1);
        leaf
    }

    /// Returns the next eviction leaf without advancing.
    pub fn peek(&self) -> LeafLabel {
        LeafLabel::new(bit_reverse(self.counter % (1 << self.levels), self.levels))
    }

    /// Number of evictions performed so far.
    pub fn count(&self) -> u64 {
        self.counter
    }
}

/// Reverses the low `bits` bits of `v`.
fn bit_reverse(v: u64, bits: u32) -> u64 {
    if bits == 0 {
        return 0;
    }
    v.reverse_bits() >> (64 - bits)
}

/// One bucket: a fixed array of `Z` block slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bucket {
    slots: Vec<Block>,
}

impl Bucket {
    /// A bucket of `z` dummy slots.
    pub fn empty(z: usize) -> Self {
        Bucket { slots: vec![Block::DUMMY; z] }
    }

    /// Read-only view of the slots.
    pub fn slots(&self) -> &[Block] {
        &self.slots
    }

    /// Mutable view of the slots.
    pub fn slots_mut(&mut self) -> &mut [Block] {
        &mut self.slots
    }

    /// Number of non-dummy slots.
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|b| !b.is_dummy()).count()
    }
}

/// Bucket count above which [`OramTree`] switches from a dense `Vec`
/// to a sparse map. `2^21` buckets ≈ a few hundred MiB of dense dummy
/// slots at Z = 5 — beyond that an all-dummy preallocation dominates
/// memory for no benefit, since deep trees (billion-block address
/// domains) only ever materialize the buckets a run actually touches.
const DENSE_BUCKET_LIMIT: u64 = 1 << 21;

/// Physical storage behind [`OramTree`]: dense for small trees
/// (identical layout and behavior to the original `Vec<Bucket>`),
/// sparse for deep trees where untouched buckets stay implicit and
/// read as the canonical empty bucket.
#[derive(Debug, Clone)]
enum BucketStore {
    Dense(Vec<Bucket>),
    Sparse {
        map: DetHashMap<u64, Bucket>,
        /// Shared all-dummy bucket returned for never-written ids.
        empty: Bucket,
        z: usize,
    },
}

/// The ORAM tree storage: geometry plus the bucket array.
///
/// This models the *untrusted external memory*; the simulator separately
/// charges DRAM timing for every slot touched. Contents here are the
/// plaintext view that only the trusted controller can see.
#[derive(Debug, Clone)]
pub struct OramTree {
    shape: TreeShape,
    store: BucketStore,
}

impl OramTree {
    /// Creates an all-dummy tree of the given shape. Trees up to
    /// [`DENSE_BUCKET_LIMIT`] buckets preallocate densely (unchanged
    /// from the original representation); deeper trees store only the
    /// buckets that are actually written, so a 2^30-address domain
    /// costs memory proportional to the working set, not the tree.
    pub fn new(shape: TreeShape) -> Self {
        let z = shape.slots_per_bucket();
        let store = if shape.bucket_count() <= DENSE_BUCKET_LIMIT {
            BucketStore::Dense(vec![Bucket::empty(z); shape.bucket_count() as usize])
        } else {
            BucketStore::Sparse { map: DetHashMap::default(), empty: Bucket::empty(z), z }
        };
        OramTree { shape, store }
    }

    /// The tree's geometry.
    pub fn shape(&self) -> TreeShape {
        self.shape
    }

    /// Immutable access to a bucket. In the sparse representation a
    /// never-written bucket reads as all-dummy.
    pub fn bucket(&self, id: BucketId) -> &Bucket {
        match &self.store {
            BucketStore::Dense(v) => &v[(id.raw() - 1) as usize],
            BucketStore::Sparse { map, empty, .. } => map.get(&id.raw()).unwrap_or(empty),
        }
    }

    /// Mutable access to a bucket (materializes it when sparse).
    pub fn bucket_mut(&mut self, id: BucketId) -> &mut Bucket {
        match &mut self.store {
            BucketStore::Dense(v) => &mut v[(id.raw() - 1) as usize],
            BucketStore::Sparse { map, z, .. } => {
                let z = *z;
                map.entry(id.raw()).or_insert_with(|| Bucket::empty(z))
            }
        }
    }

    /// Counts blocks matching `pred` across all materialized buckets
    /// (order-independent, so sparse iteration order cannot leak).
    fn count_blocks(&self, pred: impl Fn(&Block) -> bool) -> usize {
        match &self.store {
            BucketStore::Dense(v) => {
                v.iter().flat_map(|b| b.slots()).filter(|b| pred(b)).count()
            }
            BucketStore::Sparse { map, .. } => {
                map.values().flat_map(|b| b.slots()).filter(|b| pred(b)).count()
            }
        }
    }

    /// Total number of real blocks currently stored in the tree
    /// (diagnostics only — O(size of tree)).
    pub fn real_block_count(&self) -> usize {
        self.count_blocks(|b| b.is_real())
    }

    /// Total number of shadow blocks currently stored in the tree
    /// (diagnostics only — O(size of tree)).
    pub fn shadow_block_count(&self) -> usize {
        self.count_blocks(|b| b.is_shadow())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_id_levels() {
        assert_eq!(BucketId::ROOT.level(), 0);
        assert_eq!(BucketId::new(2).level(), 1);
        assert_eq!(BucketId::new(3).level(), 1);
        assert_eq!(BucketId::new(7).level(), 2);
    }

    #[test]
    fn parent_chain_reaches_root() {
        let mut b = BucketId::new(13);
        let mut hops = 0;
        while let Some(p) = b.parent() {
            b = p;
            hops += 1;
        }
        assert_eq!(b, BucketId::ROOT);
        assert_eq!(hops, 3);
    }

    #[test]
    fn shape_counts() {
        let s = TreeShape::new(2, 2); // Fig. 1 of the paper
        assert_eq!(s.leaf_count(), 4);
        assert_eq!(s.bucket_count(), 7);
        assert_eq!(s.slot_count(), 14);
        assert_eq!(s.blocks_per_path(), 6);
    }

    #[test]
    fn path_is_root_to_leaf() {
        let s = TreeShape::new(3, 4);
        let p = s.path(LeafLabel::new(5)); // 0b101
        assert_eq!(p.len(), 4);
        assert_eq!(p[0], BucketId::ROOT);
        for (lvl, b) in p.iter().enumerate() {
            assert_eq!(b.level() as usize, lvl);
        }
        // Each bucket is the parent of the next.
        for w in p.windows(2) {
            assert_eq!(w[1].parent(), Some(w[0]));
        }
        // Leaf bucket is heap index 2^3 + 5 = 13.
        assert_eq!(p[3], BucketId::new(13));
    }

    #[test]
    fn common_level_prefix() {
        let s = TreeShape::new(3, 1);
        // 0b000 vs 0b001 share levels 0..=2.
        assert_eq!(s.common_level(LeafLabel::new(0), LeafLabel::new(1)), 2);
        // identical leaves share the whole path.
        assert_eq!(s.common_level(LeafLabel::new(6), LeafLabel::new(6)), 3);
        // 0b000 vs 0b100 share only the root.
        assert_eq!(s.common_level(LeafLabel::new(0), LeafLabel::new(4)), 0);
    }

    #[test]
    fn common_level_matches_path_intersection() {
        let s = TreeShape::new(4, 1);
        for a in 0..16u64 {
            for b in 0..16u64 {
                let (la, lb) = (LeafLabel::new(a), LeafLabel::new(b));
                let pa = s.path(la);
                let pb = s.path(lb);
                let shared = pa
                    .iter()
                    .zip(pb.iter())
                    .take_while(|(x, y)| x == y)
                    .count() as u32
                    - 1;
                assert_eq!(s.common_level(la, lb), shared, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn eviction_order_is_bit_reversed_and_covers_all_leaves() {
        let mut order = EvictionOrder::new(3);
        let first: Vec<u64> = (0..8).map(|_| order.next_leaf().raw()).collect();
        assert_eq!(first, vec![0, 4, 2, 6, 1, 5, 3, 7]);
        // The next 8 repeat the cycle.
        let second: Vec<u64> = (0..8).map(|_| order.next_leaf().raw()).collect();
        assert_eq!(first, second);
        assert_eq!(order.count(), 16);
    }

    #[test]
    fn tree_starts_all_dummy() {
        let t = OramTree::new(TreeShape::new(4, 3));
        assert_eq!(t.real_block_count(), 0);
        assert_eq!(t.shadow_block_count(), 0);
        assert_eq!(t.bucket(BucketId::ROOT).occupancy(), 0);
    }

    #[test]
    fn sparse_tree_reads_empty_and_materializes_on_write() {
        // 2^30 leaves → far past the dense limit; construction must be
        // O(1) memory and absent buckets must read as all-dummy.
        let mut t = OramTree::new(TreeShape::new(30, 4));
        let deep = t.shape().bucket_on_path(LeafLabel::new(987_654_321), 30);
        assert_eq!(t.bucket(deep).occupancy(), 0);
        assert_eq!(t.real_block_count(), 0);
        t.bucket_mut(deep).slots_mut()[0] = Block::real(
            crate::types::BlockAddr::new(7),
            LeafLabel::new(987_654_321),
            42,
            1,
        );
        assert_eq!(t.bucket(deep).occupancy(), 1);
        assert_eq!(t.real_block_count(), 1);
        // A neighbouring never-written bucket still reads empty.
        let sibling = BucketId::new(deep.raw() ^ 1);
        assert_eq!(t.bucket(sibling).occupancy(), 0);
    }

    #[test]
    fn bucket_on_path_consistent_with_path() {
        let s = TreeShape::new(5, 2);
        let leaf = LeafLabel::new(21);
        let p = s.path(leaf);
        for lvl in 0..=5u32 {
            assert_eq!(s.bucket_on_path(leaf, lvl), p[lvl as usize]);
        }
    }

    /// Regression for the zero-allocation path API: `path_into` and
    /// `path_iter` must reproduce the level-by-level ancestor chain
    /// (the old `path` construction) for random leaves at several
    /// tree depths.
    #[test]
    fn path_into_matches_level_by_level_path() {
        let mut rng = oram_util::Rng64::seed_from_u64(0x7EE5);
        let mut buf = Vec::new();
        for levels in [1u32, 3, 7, 14, 24] {
            let s = TreeShape::new(levels, 4);
            for _ in 0..50 {
                let leaf = LeafLabel::new(rng.below(s.leaf_count()));
                let reference: Vec<BucketId> =
                    (0..=levels).map(|lvl| s.bucket_on_path(leaf, lvl)).collect();
                assert_eq!(s.path(leaf), reference, "L={levels} leaf={leaf:?}");
                s.path_into(leaf, &mut buf);
                assert_eq!(buf, reference, "path_into L={levels}");
                let iterated: Vec<BucketId> = s.path_iter(leaf).collect();
                assert_eq!(iterated, reference, "path_iter L={levels}");
                assert_eq!(s.path_iter(leaf).len(), levels as usize + 1);
            }
        }
    }

    #[test]
    fn path_into_reuses_capacity() {
        let s = TreeShape::new(6, 2);
        let mut buf = Vec::new();
        s.path_into(LeafLabel::new(0), &mut buf);
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        for leaf in 0..s.leaf_count() {
            s.path_into(LeafLabel::new(leaf), &mut buf);
        }
        assert_eq!(buf.capacity(), cap, "no regrowth");
        assert_eq!(buf.as_ptr(), ptr, "no reallocation");
    }
}

//! Shadow-block generation: duplication candidate queues (RD-queue and
//! HD-queue), the partitioning boundary between RD-Dup and HD-Dup, and the
//! DRI saturating counter that drives dynamic partitioning.
//!
//! Terminology (matching the paper): levels are numbered from the root
//! (level 0) to the leaves (level `L`). A path read proceeds root→leaf, so
//! a block at a *larger* level number is accessed *later* — that is the
//! "rear data" RD-Dup advances. HD-Dup instead wants the root-ward levels,
//! which are shared by many paths and therefore pulled into the stash most
//! often. The partitioning level `P` splits the tree: dummy slots at
//! levels `>= P` are filled by RD-Dup, slots at levels `< P` by HD-Dup.


use crate::hotcache::HotAddressCache;
use crate::tree::TreeShape;
use crate::types::{Block, BlockAddr, LeafLabel, Version};

/// How dummy slots are (or are not) filled with shadow blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DupPolicy {
    /// Baseline Tiny ORAM: dummy slots stay dummy.
    Off,
    /// Pure Rear Data Duplication (equivalent to a partitioning level of 0).
    RdOnly,
    /// Pure Hot Data Duplication (partitioning level above the leaf level).
    HdOnly,
    /// Static partitioning at a fixed level.
    Static {
        /// The partitioning level `P`: RD-Dup at levels `>= P`, HD-Dup below.
        partition_level: u32,
    },
    /// Dynamic partitioning driven by the DRI saturating counter.
    Dynamic {
        /// Width of the DRI counter in bits (the paper finds 3 optimal).
        counter_bits: u32,
    },
}

impl DupPolicy {
    /// Returns `true` if any duplication happens at all.
    pub fn is_enabled(self) -> bool {
        !matches!(self, DupPolicy::Off)
    }
}

/// A block eligible for duplication into a dummy slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DupCandidate {
    /// Program address of the copied block.
    pub addr: BlockAddr,
    /// Leaf label the copy is bound to (Rule-1 constrains placement to
    /// buckets on this label's path).
    pub label: LeafLabel,
    /// Payload.
    pub data: u64,
    /// Version stamp of the copy.
    pub version: Version,
    /// Level of the authoritative real copy in the tree; Rule-2 only
    /// permits shadows strictly closer to the root than this.
    pub real_level: u32,
    /// `true` when this candidate is a recirculated stash shadow rather
    /// than a block written back by the current path write (diagnostics).
    pub recirculated: bool,
}

impl DupCandidate {
    /// Materializes the shadow block for this candidate.
    pub fn to_shadow_block(&self) -> Block {
        Block {
            kind: crate::types::BlockKind::Shadow,
            addr: self.addr,
            label: self.label,
            data: self.data,
            version: self.version,
        }
    }

    /// Checks Rules 1 and 2 for placing this candidate's shadow at
    /// `slot_level` on the path to `eviction_leaf`.
    pub fn eligible_at(&self, shape: &TreeShape, eviction_leaf: LeafLabel, slot_level: u32) -> bool {
        slot_level < self.real_level
            && shape.common_level(eviction_leaf, self.label) >= slot_level
    }
}

/// The duplication candidate pool built during one path write.
///
/// The paper models this as two hardware queues (RD-queue sorted by level,
/// HD-queue sorted by Hot Address Cache counters) that are cleared when the
/// path write completes; this struct is the behavioural equivalent with a
/// single pool and two selection orders.
#[derive(Debug, Clone, Default)]
pub struct DupQueues {
    candidates: Vec<DupCandidate>,
}

impl DupQueues {
    /// An empty pool.
    pub fn new() -> Self {
        DupQueues::default()
    }

    /// Number of candidates currently enqueued.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Returns `true` when no candidates are enqueued.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Enqueues a candidate (a block just evicted deeper on this path, or a
    /// stash-resident shadow whose real copy sits in the tree).
    pub fn push(&mut self, c: DupCandidate) {
        self.candidates.push(c);
    }

    /// RD-Dup selection: among the eligible candidates, the one whose
    /// most-root-ward copy sits at the **deepest** level (the rear data).
    ///
    /// The candidate is *not* removed: following the paper's Fig. 4
    /// ("the level of Data-A has changed to level-1 after duplication"),
    /// its effective level becomes the new shadow's level, so the same
    /// block can keep climbing through dummy slots toward the root across
    /// the path write — that chain is what produces large advances.
    pub fn select_rd(
        &mut self,
        shape: &TreeShape,
        eviction_leaf: LeafLabel,
        slot_level: u32,
    ) -> Option<DupCandidate> {
        self.select_rd_with(shape, eviction_leaf, slot_level, true)
    }

    /// [`DupQueues::select_rd`] with the chain behaviour made explicit
    /// (`chain = false` pops the candidate instead — the ablation mode).
    pub fn select_rd_with(
        &mut self,
        shape: &TreeShape,
        eviction_leaf: LeafLabel,
        slot_level: u32,
        chain: bool,
    ) -> Option<DupCandidate> {
        let idx = self
            .candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| c.eligible_at(shape, eviction_leaf, slot_level))
            .max_by_key(|(_, c)| c.real_level)?
            .0;
        let picked = self.candidates[idx];
        if chain {
            self.candidates[idx].real_level = slot_level;
        } else {
            self.candidates.swap_remove(idx);
        }
        Some(picked)
    }

    /// HD-Dup selection: among the eligible candidates, the one with the
    /// highest Hot Address Cache counter (zero when uncached). As with
    /// [`DupQueues::select_rd`], the candidate's effective level becomes
    /// the shadow's level, so a hot block is duplicated at most once per
    /// level but can climb toward the root.
    pub fn select_hd(
        &mut self,
        shape: &TreeShape,
        eviction_leaf: LeafLabel,
        slot_level: u32,
        hot: &HotAddressCache,
    ) -> Option<DupCandidate> {
        self.select_hd_with(shape, eviction_leaf, slot_level, hot, true)
    }

    /// [`DupQueues::select_hd`] with the chain behaviour made explicit
    /// (`chain = false` pops the candidate instead — the ablation mode).
    pub fn select_hd_with(
        &mut self,
        shape: &TreeShape,
        eviction_leaf: LeafLabel,
        slot_level: u32,
        hot: &HotAddressCache,
        chain: bool,
    ) -> Option<DupCandidate> {
        let idx = self
            .candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| c.eligible_at(shape, eviction_leaf, slot_level))
            .max_by_key(|(_, c)| hot.priority(c.addr))?
            .0;
        let picked = self.candidates[idx];
        if chain {
            self.candidates[idx].real_level = slot_level;
        } else {
            self.candidates.swap_remove(idx);
        }
        Some(picked)
    }

    /// Clears the pool (called when the path write completes).
    pub fn clear(&mut self) {
        self.candidates.clear();
    }
}

/// The saturating Data-Request-Interval counter (paper Sec. IV-D2).
///
/// The counter observes the request stream: a dummy request following a
/// real one signals a long DRI (+1, RD-Dup territory); two consecutive
/// real requests signal short DRIs (−1, HD-Dup territory). It saturates at
/// `0` and `2^bits − 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriCounter {
    bits: u32,
    value: u32,
    prev_was_real: Option<bool>,
}

impl DriCounter {
    /// Creates a counter of the given width, starting at the midpoint.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or exceeds 16.
    pub fn new(bits: u32) -> Self {
        assert!((1..=16).contains(&bits), "counter width out of range");
        DriCounter { bits, value: 1 << (bits - 1), prev_was_real: None }
    }

    /// Maximum (saturated) value `2^bits − 1`.
    pub fn max(&self) -> u32 {
        (1 << self.bits) - 1
    }

    /// Current counter value.
    pub fn value(&self) -> u32 {
        self.value
    }

    /// Width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Records one ORAM request (`is_real == false` for dummy requests).
    pub fn record(&mut self, is_real: bool) {
        if let Some(prev_real) = self.prev_was_real {
            if prev_real && !is_real {
                self.value = (self.value + 1).min(self.max());
            } else if prev_real && is_real {
                self.value = self.value.saturating_sub(1);
            }
        }
        self.prev_was_real = Some(is_real);
    }

    /// Long-DRI indication: the counter is at or above the half-maximum,
    /// meaning RD-Dup is preferred and the partitioning level should fall.
    pub fn prefers_rd(&self) -> bool {
        self.value >= self.max().div_ceil(2)
    }
}

/// Dynamic partitioning state: the DRI counter plus the partitioning-level
/// register it steers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicPartitioner {
    counter: DriCounter,
    level: u32,
    max_level: u32,
}

impl DynamicPartitioner {
    /// Creates a dynamic partitioner for a tree whose deepest level is
    /// `max_level` (= `L`), starting at the midpoint level.
    pub fn new(counter_bits: u32, max_level: u32) -> Self {
        DynamicPartitioner {
            counter: DriCounter::new(counter_bits),
            level: max_level / 2,
            max_level,
        }
    }

    /// Current partitioning level.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Reference to the underlying counter.
    pub fn counter(&self) -> &DriCounter {
        &self.counter
    }

    /// Feeds one request observation and nudges the partitioning level:
    /// short DRIs (counter below half) grow the HD-Dup region, long DRIs
    /// shrink it (paper Sec. IV-D2).
    pub fn on_request(&mut self, is_real: bool) {
        self.counter.record(is_real);
        if self.counter.prefers_rd() {
            self.level = self.level.saturating_sub(1);
        } else if self.level < self.max_level {
            self.level += 1;
        }
    }
}

/// Which duplication scheme a given dummy slot should use, resolved from
/// the policy and the current partitioning level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotScheme {
    /// Leave the slot dummy.
    None,
    /// Fill via RD-queue.
    Rd,
    /// Fill via HD-queue.
    Hd,
}

/// Resolves the scheme for a dummy slot at `slot_level` given the
/// partitioning level: RD-Dup at and below the boundary toward the leaves
/// (`slot_level >= partition_level`), HD-Dup toward the root.
pub fn scheme_for_slot(policy: DupPolicy, partition_level: u32, slot_level: u32) -> SlotScheme {
    match policy {
        DupPolicy::Off => SlotScheme::None,
        DupPolicy::RdOnly => SlotScheme::Rd,
        DupPolicy::HdOnly => SlotScheme::Hd,
        DupPolicy::Static { .. } | DupPolicy::Dynamic { .. } => {
            if slot_level >= partition_level {
                SlotScheme::Rd
            } else {
                SlotScheme::Hd
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(addr: u64, label: u64, real_level: u32) -> DupCandidate {
        DupCandidate {
            addr: BlockAddr::new(addr),
            label: LeafLabel::new(label),
            data: addr * 10,
            version: 1,
            real_level,
            recirculated: false,
        }
    }

    #[test]
    fn eligibility_enforces_both_rules() {
        let shape = TreeShape::new(3, 2);
        let c = cand(1, 0b000, 2);
        let leaf = LeafLabel::new(0);
        assert!(c.eligible_at(&shape, leaf, 1), "root-ward slot on same path");
        assert!(!c.eligible_at(&shape, leaf, 2), "Rule-2: same level rejected");
        assert!(!c.eligible_at(&shape, leaf, 3), "Rule-2: deeper rejected");
        // A leaf that diverges immediately only shares the root.
        let far = LeafLabel::new(0b100);
        assert!(c.eligible_at(&shape, far, 0));
        assert!(!c.eligible_at(&shape, far, 1), "Rule-1: off-path rejected");
    }

    #[test]
    fn rd_selection_prefers_deepest_real_copy() {
        let shape = TreeShape::new(3, 2);
        let mut q = DupQueues::new();
        q.push(cand(1, 0, 2));
        q.push(cand(2, 0, 3)); // rear data
        q.push(cand(3, 0, 1));
        let picked = q.select_rd(&shape, LeafLabel::new(0), 1).unwrap();
        assert_eq!(picked.addr, BlockAddr::new(2));
        assert_eq!(q.len(), 3, "candidates stay queued with updated level");
        // The same block is no longer eligible at the same level (its
        // effective level is now 1), so the next pick differs.
        let second = q.select_rd(&shape, LeafLabel::new(0), 1).unwrap();
        assert_eq!(second.addr, BlockAddr::new(1));
        // At a shallower slot the chain continues: every candidate now
        // sits at effective level 1, so any of them may be picked.
        let third = q.select_rd(&shape, LeafLabel::new(0), 0).unwrap();
        assert_eq!(third.real_level, 1, "chain continues from level 1");
    }

    #[test]
    fn hd_selection_prefers_hottest() {
        let shape = TreeShape::new(3, 2);
        let mut hot = HotAddressCache::new(8, 2);
        for _ in 0..5 {
            hot.observe(BlockAddr::new(3));
        }
        hot.observe(BlockAddr::new(1));
        let mut q = DupQueues::new();
        q.push(cand(1, 0, 2));
        q.push(cand(3, 0, 2));
        let picked = q.select_hd(&shape, LeafLabel::new(0), 0, &hot).unwrap();
        assert_eq!(picked.addr, BlockAddr::new(3));
    }

    #[test]
    fn selection_respects_eligibility() {
        let shape = TreeShape::new(3, 2);
        let mut q = DupQueues::new();
        q.push(cand(1, 0b100, 3)); // off-path below level 0 for leaf 0
        assert!(q.select_rd(&shape, LeafLabel::new(0), 1).is_none());
        assert_eq!(q.len(), 1, "ineligible candidates stay queued");
        assert!(q.select_rd(&shape, LeafLabel::new(0), 0).is_some());
    }

    #[test]
    fn shadow_block_carries_identity() {
        let c = cand(7, 3, 4);
        let b = c.to_shadow_block();
        assert!(b.is_shadow());
        assert_eq!(b.addr, c.addr);
        assert_eq!(b.label, c.label);
        assert_eq!(b.data, c.data);
    }

    #[test]
    fn dri_counter_saturates_both_ways() {
        let mut c = DriCounter::new(2); // range 0..=3, starts at 2
        c.record(true);
        for _ in 0..10 {
            c.record(false); // real→dummy once, then dummy→dummy (no-ops)
        }
        assert!(c.value() <= c.max());
        // Alternate real/dummy to pump it up.
        for _ in 0..10 {
            c.record(true);
            c.record(false);
        }
        assert_eq!(c.value(), c.max());
        assert!(c.prefers_rd());
        // Streams of real requests drive it to zero.
        for _ in 0..20 {
            c.record(true);
        }
        assert_eq!(c.value(), 0);
        assert!(!c.prefers_rd());
    }

    #[test]
    fn dri_counter_ignores_dummy_to_real() {
        let mut c = DriCounter::new(3);
        let start = c.value();
        c.record(false);
        c.record(true); // dummy→real: unchanged
        assert_eq!(c.value(), start);
    }

    #[test]
    fn dynamic_partitioner_moves_toward_hd_on_short_dris() {
        let mut p = DynamicPartitioner::new(3, 24);
        let start = p.level();
        for _ in 0..30 {
            p.on_request(true);
        }
        assert!(p.level() > start, "real-request streams grow the HD region");
        assert_eq!(p.level(), 24, "clamped at the leaf level");
    }

    #[test]
    fn dynamic_partitioner_moves_toward_rd_on_long_dris() {
        let mut p = DynamicPartitioner::new(3, 24);
        for _ in 0..40 {
            p.on_request(true);
            p.on_request(false);
        }
        assert_eq!(p.level(), 0, "dummy-laced streams shrink the HD region");
    }

    #[test]
    fn scheme_resolution() {
        use SlotScheme::*;
        assert_eq!(scheme_for_slot(DupPolicy::Off, 0, 5), None);
        assert_eq!(scheme_for_slot(DupPolicy::RdOnly, 0, 5), Rd);
        assert_eq!(scheme_for_slot(DupPolicy::HdOnly, 0, 5), Hd);
        let p = DupPolicy::Static { partition_level: 7 };
        assert_eq!(scheme_for_slot(p, 7, 7), Rd);
        assert_eq!(scheme_for_slot(p, 7, 10), Rd);
        assert_eq!(scheme_for_slot(p, 7, 6), Hd);
        assert_eq!(scheme_for_slot(p, 7, 0), Hd);
    }
}

//! Configuration of the ORAM controller.


use crate::shadow::DupPolicy;

/// Which position-map organization the controller instantiates.
///
/// `Flat` is the original O(N)-on-chip array — byte-identical behavior
/// to before the backend abstraction existed. `Sparse` keeps identical
/// semantics but stores entries in a hash map so billion-address
/// domains cost memory proportional to the touched working set.
/// `Recursive` stores posmap entries in a chain of smaller ORAMs
/// (Path ORAM recursion) fronted by the PLB; only the top-level map
/// — sized to fit `onchip_kb` — plus the PLB stay on chip, and every
/// PLB miss issues real, costed accesses to the posmap ORAMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PosMapSelect {
    /// Flat on-chip array (the pre-subsystem default).
    Flat,
    /// Flat semantics, sparse hash-map storage for huge domains.
    Sparse,
    /// Recursive posmap-ORAM chain with an on-chip budget in KiB.
    Recursive {
        /// On-chip budget for the terminal (top) map, in KiB.
        onchip_kb: u32,
    },
}

/// Complete configuration of a [`crate::OramController`].
///
/// Defaults follow Table I of the paper scaled to a tree that fits
/// comfortably in host memory (`L = 16`); [`OramConfig::paper_table1`]
/// gives the unscaled parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OramConfig {
    /// Tree depth `L` (leaf level index; the tree has `L + 1` levels).
    pub levels: u32,
    /// Block slots per bucket (`Z`, Table I: 5).
    pub z: usize,
    /// Eviction rate `A`: one eviction (path read + path write) after every
    /// `A − 1` read-only accesses (Table I: 5).
    pub eviction_rate: u32,
    /// Stash capacity in blocks (`M`, ~200 in the literature).
    pub stash_capacity: usize,
    /// Shadow-block duplication policy.
    pub dup_policy: DupPolicy,
    /// Number of root-side tree levels cached on chip (0 disables treetop
    /// caching).
    pub treetop_levels: u32,
    /// PLB entries (pages).
    pub plb_entries: usize,
    /// Consecutive block addresses per PLB page.
    pub plb_page_addrs: u64,
    /// Hot Address Cache geometry: sets.
    pub hot_cache_sets: usize,
    /// Hot Address Cache geometry: ways.
    pub hot_cache_ways: usize,
    /// Seed for label assignment / remapping and dummy-path selection.
    pub seed: u64,
    /// Record the externally visible access trace (bucket sequences) for
    /// security analysis. Costs memory; off by default.
    pub record_trace: bool,
    /// Ablation: offer stash-resident shadows as duplication candidates at
    /// evictions (Sec. V-B2). Disabling kills shadow recirculation, so
    /// shadows die the first time an eviction crosses their bucket.
    pub recirculate_stash_shadows: bool,
    /// Ablation: after duplicating a candidate, lower its effective level
    /// to the new shadow's level so it can keep climbing toward the root
    /// (the paper's Fig. 4 chain). Disabling limits each candidate to one
    /// shadow per path write.
    pub chain_duplication: bool,
    /// Position-map organization (flat array, sparse map, or recursive
    /// posmap-ORAM chain).
    pub posmap: PosMapSelect,
}

impl OramConfig {
    /// A small configuration suitable for unit tests and doc examples.
    pub fn small_test() -> Self {
        OramConfig {
            levels: 7,
            z: 4,
            eviction_rate: 4,
            stash_capacity: 96,
            dup_policy: DupPolicy::Off,
            treetop_levels: 0,
            plb_entries: 64,
            plb_page_addrs: 16,
            hot_cache_sets: 16,
            hot_cache_ways: 2,
            seed: 0xD0E5_11AD,
            record_trace: false,
            recirculate_stash_shadows: true,
            chain_duplication: true,
            posmap: PosMapSelect::Flat,
        }
    }

    /// The paper's Table I configuration (4 GB data ORAM, `L = 24`,
    /// `Z = A = 5`, 64 KB PLB, 1 KB Hot Address Cache).
    ///
    /// Note: materializing this tree takes several GB of host memory; the
    /// experiment harness uses scaled-down trees by default.
    pub fn paper_table1() -> Self {
        OramConfig {
            levels: 24,
            z: 5,
            eviction_rate: 5,
            stash_capacity: 200,
            dup_policy: DupPolicy::Off,
            treetop_levels: 0,
            plb_entries: 1024,
            plb_page_addrs: 16,
            hot_cache_sets: 64,
            hot_cache_ways: 2,
            seed: 0xD0E5_11AD,
            record_trace: false,
            recirculate_stash_shadows: true,
            chain_duplication: true,
            posmap: PosMapSelect::Flat,
        }
    }

    /// Builder-style: sets the position-map organization.
    pub fn with_posmap(mut self, posmap: PosMapSelect) -> Self {
        self.posmap = posmap;
        self
    }

    /// Builder-style: sets the duplication policy.
    pub fn with_dup_policy(mut self, policy: DupPolicy) -> Self {
        self.dup_policy = policy;
        self
    }

    /// Builder-style: sets the number of on-chip treetop levels.
    pub fn with_treetop(mut self, levels: u32) -> Self {
        self.treetop_levels = levels;
        self
    }

    /// Builder-style: sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: sets the tree depth.
    pub fn with_levels(mut self, levels: u32) -> Self {
        self.levels = levels;
        self
    }

    /// Builder-style: enables trace recording.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.levels == 0 || self.levels >= 32 {
            return Err(format!("levels must be in 1..32, got {}", self.levels));
        }
        if self.z == 0 {
            return Err("z must be positive".into());
        }
        if self.eviction_rate < 2 {
            return Err("eviction_rate must be at least 2".into());
        }
        if self.stash_capacity < self.z * (self.levels as usize + 1) {
            return Err(format!(
                "stash capacity {} cannot hold one full path of {} blocks",
                self.stash_capacity,
                self.z * (self.levels as usize + 1)
            ));
        }
        if self.treetop_levels > self.levels {
            return Err("treetop_levels exceeds tree depth".into());
        }
        if let DupPolicy::Static { partition_level } = self.dup_policy {
            if partition_level > self.levels + 1 {
                return Err("partition level beyond leaf level + 1".into());
            }
        }
        if let DupPolicy::Dynamic { counter_bits } = self.dup_policy {
            if !(1..=16).contains(&counter_bits) {
                return Err("DRI counter width must be in 1..=16".into());
            }
        }
        if let PosMapSelect::Recursive { onchip_kb } = self.posmap {
            if onchip_kb == 0 {
                return Err("recursive posmap needs a positive on-chip budget".into());
            }
        }
        Ok(())
    }
}

impl Default for OramConfig {
    fn default() -> Self {
        OramConfig::small_test()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        OramConfig::small_test().validate().unwrap();
        OramConfig::paper_table1().validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = OramConfig::small_test();
        c.stash_capacity = 1;
        assert!(c.validate().is_err());

        let mut c = OramConfig::small_test();
        c.eviction_rate = 1;
        assert!(c.validate().is_err());

        let mut c = OramConfig::small_test();
        c.treetop_levels = 99;
        assert!(c.validate().is_err());

        let mut c = OramConfig::small_test();
        c.dup_policy = DupPolicy::Dynamic { counter_bits: 0 };
        assert!(c.validate().is_err());
    }

    #[test]
    fn builder_methods_compose() {
        let c = OramConfig::small_test()
            .with_dup_policy(DupPolicy::RdOnly)
            .with_treetop(3)
            .with_seed(7)
            .with_levels(8);
        assert_eq!(c.dup_policy, DupPolicy::RdOnly);
        assert_eq!(c.treetop_levels, 3);
        assert_eq!(c.seed, 7);
        assert_eq!(c.levels, 8);
        c.validate().unwrap();
    }
}

//! Fundamental value types shared across the ORAM protocol.
//!
//! Everything in this module is deliberately small and `Copy`: these types
//! flow through the hot path of the simulator (millions of block moves per
//! run), and they also appear in externally visible traces, so they must be
//! cheap to clone and compare.

use std::fmt;


/// A program (logical) block address, i.e. the address space the CPU's last
/// level cache misses into. One `BlockAddr` names one 64-byte data block.
///
/// ```
/// use oram_protocol::BlockAddr;
/// let a = BlockAddr::new(42);
/// assert_eq!(a.raw(), 42);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address from its raw index.
    pub const fn new(raw: u64) -> Self {
        BlockAddr(raw)
    }

    /// Returns the raw index.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk#{}", self.0)
    }
}

/// A leaf label in the ORAM tree, in `0..2^L`.
///
/// The Path ORAM invariant ties every data block to a leaf label: a block
/// labelled `l` is either in the stash or somewhere on the path from the
/// root to leaf `l`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LeafLabel(u64);

impl LeafLabel {
    /// Creates a leaf label from its raw value.
    pub const fn new(raw: u64) -> Self {
        LeafLabel(raw)
    }

    /// Returns the raw label value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for LeafLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "leaf#{}", self.0)
    }
}

/// Monotonic per-address version number used by the trusted controller to
/// detect stale copies (both stale shadow blocks and stale real copies left
/// in the tree by read-only path reads).
///
/// The paper states that "stale shadow blocks are invalidated in the path
/// read" without specifying a mechanism; a trusted-side version counter is
/// the cleanest realization and has no externally visible effect.
pub type Version = u64;

/// What kind of content a block slot holds.
///
/// In the real hardware all three are ciphertext-indistinguishable; the
/// distinction lives in the (encrypted) block header and is visible only to
/// the ORAM controller after decryption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockKind {
    /// A dummy block: meaningless filler, discarded on read.
    Dummy,
    /// A real data block: the single authoritative copy of its address.
    Real,
    /// A shadow block: a duplicate of a real block's data placed in what
    /// would otherwise be a dummy slot (the paper's contribution).
    Shadow,
}

impl BlockKind {
    /// Returns `true` for `Real` and `Shadow` blocks (anything carrying
    /// program data).
    pub fn carries_data(self) -> bool {
        !matches!(self, BlockKind::Dummy)
    }
}

impl fmt::Display for BlockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BlockKind::Dummy => "dummy",
            BlockKind::Real => "real",
            BlockKind::Shadow => "shadow",
        };
        f.write_str(s)
    }
}

/// A decrypted block as seen inside the ORAM controller:
/// `(shadow bit, data, label, addr)` per Fig. 7(a) of the paper, plus the
/// version number used for stale-copy invalidation.
///
/// `data` models the 64-byte payload as a single value token; the simulator
/// only needs to check *which* value a read returns, not its bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// Content kind (the "shadow bit" generalized to a three-way tag so a
    /// dummy can be represented uniformly).
    pub kind: BlockKind,
    /// Program address (meaningless for dummies).
    pub addr: BlockAddr,
    /// Leaf label this copy is bound to (meaningless for dummies).
    pub label: LeafLabel,
    /// Payload value token.
    pub data: u64,
    /// Trusted-side version stamp; copies older than the controller's
    /// per-address counter are stale and discarded on load.
    pub version: Version,
}

impl Block {
    /// A dummy block. Dummy payloads are never observed, so the content is
    /// fixed; probabilistic encryption is what makes them indistinguishable
    /// on the real hardware.
    pub const DUMMY: Block = Block {
        kind: BlockKind::Dummy,
        addr: BlockAddr::new(u64::MAX),
        label: LeafLabel::new(0),
        data: 0,
        version: 0,
    };

    /// Creates a real data block.
    pub fn real(addr: BlockAddr, label: LeafLabel, data: u64, version: Version) -> Self {
        Block { kind: BlockKind::Real, addr, label, data, version }
    }

    /// Creates a shadow copy of `self` bound to the same address, data and
    /// version but (potentially) a different position in the tree.
    ///
    /// The caller is responsible for honoring Rule-2 (the shadow must land
    /// strictly closer to the root than the copied block).
    pub fn to_shadow(&self) -> Block {
        debug_assert!(self.kind.carries_data());
        Block { kind: BlockKind::Shadow, ..*self }
    }

    /// Returns `true` if this is a dummy slot.
    pub fn is_dummy(&self) -> bool {
        self.kind == BlockKind::Dummy
    }

    /// Returns `true` if this is a shadow copy.
    pub fn is_shadow(&self) -> bool {
        self.kind == BlockKind::Shadow
    }

    /// Returns `true` if this is the authoritative real copy.
    pub fn is_real(&self) -> bool {
        self.kind == BlockKind::Real
    }
}

impl Default for Block {
    fn default() -> Self {
        Block::DUMMY
    }
}

/// Memory operation type of a CPU request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Read the block.
    Read,
    /// Overwrite the block's payload.
    Write,
}

impl Op {
    /// Returns `true` for [`Op::Write`].
    pub fn is_write(self) -> bool {
        matches!(self, Op::Write)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Op::Read => "read",
            Op::Write => "write",
        })
    }
}

/// A single memory request as issued by the LLC: `(addr, op, data)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Target block address.
    pub addr: BlockAddr,
    /// Read or write.
    pub op: Op,
    /// Payload for writes (ignored for reads).
    pub data: u64,
}

impl Request {
    /// Convenience constructor for a read request.
    pub fn read(addr: BlockAddr) -> Self {
        Request { addr, op: Op::Read, data: 0 }
    }

    /// Convenience constructor for a write request.
    pub fn write(addr: BlockAddr, data: u64) -> Self {
        Request { addr, op: Op::Write, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dummy_is_dummy() {
        assert!(Block::DUMMY.is_dummy());
        assert!(!Block::DUMMY.is_real());
        assert!(!Block::DUMMY.kind.carries_data());
    }

    #[test]
    fn shadow_preserves_identity() {
        let b = Block::real(BlockAddr::new(7), LeafLabel::new(3), 99, 5);
        let s = b.to_shadow();
        assert!(s.is_shadow());
        assert_eq!(s.addr, b.addr);
        assert_eq!(s.label, b.label);
        assert_eq!(s.data, b.data);
        assert_eq!(s.version, b.version);
    }

    #[test]
    fn request_constructors() {
        let r = Request::read(BlockAddr::new(1));
        assert_eq!(r.op, Op::Read);
        let w = Request::write(BlockAddr::new(2), 10);
        assert!(w.op.is_write());
        assert_eq!(w.data, 10);
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert!(!format!("{}", BlockAddr::new(0)).is_empty());
        assert!(!format!("{}", LeafLabel::new(0)).is_empty());
        assert!(!format!("{}", BlockKind::Shadow).is_empty());
        assert!(!format!("{}", Op::Read).is_empty());
    }
}

//! # oram-protocol
//!
//! A Tiny ORAM (Path-ORAM-derived) controller with **Shadow Block** data
//! duplication, reproducing the protocol contribution of Zhang et al.,
//! *"Shadow Block: Accelerating ORAM Accesses with Data Duplication"*
//! (MICRO 2018).
//!
//! ## What's in here
//!
//! * [`OramController`] — the trusted controller: stash, position map,
//!   read-only path reads, reverse-lexicographic evictions, and the
//!   shadow-block machinery (RD-Dup, HD-Dup, static/dynamic partitioning).
//! * [`OramTree`] / [`TreeShape`] — the untrusted external memory modeled
//!   as a binary tree of `Z`-slot buckets.
//! * [`Stash`] — the on-chip CAM with replaceable entries and merge rules.
//! * [`PosMapBackend`] — the position-map seam: [`FlatPosMap`] (the
//!   original on-chip array), [`SparseFlatPosMap`] (hash-map storage for
//!   huge domains) and [`RecursivePosMap`] (the map stored in a chain of
//!   smaller ORAMs behind the PLB), all carrying the trusted metadata
//!   (versions, real-copy sites) that keeps duplicated copies coherent.
//! * [`HotAddressCache`] — the LFU access-counter cache driving HD-Dup.
//! * [`TraceRecorder`] — the externally visible access pattern, used by the
//!   security tests to show the shadow controller is indistinguishable
//!   from the baseline.
//!
//! Timing is deliberately *not* modeled here: the controller reports which
//! buckets each access touches and at which flat path position the
//! requested data became available; the `oram-sim` crate converts that into
//! cycles through a DDR3 model.
//!
//! ## Quick example
//!
//! ```
//! use oram_protocol::{OramController, OramConfig, DupPolicy, Request, BlockAddr};
//!
//! # fn main() -> Result<(), String> {
//! let cfg = OramConfig::small_test().with_dup_policy(DupPolicy::Dynamic { counter_bits: 3 });
//! let mut ctl = OramController::new(cfg)?;
//! ctl.access(Request::write(BlockAddr::new(1), 42));
//! let r = ctl.access(Request::read(BlockAddr::new(1)));
//! assert_eq!(r.value, 42);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod access;
mod config;
mod controller;
mod hotcache;
mod posmap;
mod posmap_recursive;
mod shadow;
mod stash;
mod tree;
mod types;

pub use access::{
    AccessResult, PathPhase, PhaseKind, PhaseList, ServedFrom, TraceEvent, TraceRecorder,
    MAX_PHASES,
};
pub use config::{OramConfig, PosMapSelect};
#[cfg(feature = "mutants")]
pub use controller::Mutant;
pub use controller::{AccessTicket, OramController, OramStats};
pub use oram_util::{BusEvent, BusObserver, BusPhase, SharedObserver};
pub use hotcache::{HotAddressCache, HotCacheStats};
pub use posmap::{
    build_posmap, FlatPosMap, PlbStats, PosEntry, PosMapBackend, PositionMap, PosmapPhase,
    RealCopySite, SparseFlatPosMap,
};
pub use posmap_recursive::{RecursivePosMap, ENTRIES_PER_BLOCK};
pub use shadow::{
    scheme_for_slot, DriCounter, DupCandidate, DupPolicy, DupQueues, DynamicPartitioner,
    SlotScheme,
};
pub use stash::{InsertOutcome, Stash, StashEntry, StashStats};
pub use tree::{Bucket, BucketId, EvictionOrder, OramTree, PathIter, TreeShape};
pub use types::{Block, BlockAddr, BlockKind, LeafLabel, Op, Request, Version};

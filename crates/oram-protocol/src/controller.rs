//! The trusted ORAM controller: Tiny ORAM's access protocol with optional
//! shadow-block duplication.
//!
//! One CPU request proceeds through the steps of Sec. II-C:
//!
//! 1. query the stash; a hit is served on chip;
//! 2. on a miss, look up the leaf label in the position map;
//! 3. read the whole path (*read-only phase*), forwarding the requested
//!    data the moment the first current copy — real **or shadow** — is
//!    decrypted (Algorithm 2);
//! 4. after every `A − 1` read-only accesses, run one eviction: read the
//!    next reverse-lexicographic path and rewrite it from the stash
//!    (*read-write phase*), filling dummy slots with shadow copies per the
//!    duplication policy (Algorithm 1).
//!
//! The controller is purely functional with respect to time: it reports
//! *what* was accessed and *at which flat block position* data became
//! available; the system simulator turns that into cycles via the DRAM
//! model.

use oram_util::{BusEvent, BusPhase, MetricId, Rng64, SharedObserver, SharedTelemetry};

use crate::access::{AccessResult, PathPhase, PhaseKind, PhaseList, ServedFrom, TraceRecorder};
use crate::config::OramConfig;
use crate::hotcache::HotAddressCache;
use crate::posmap::{build_posmap, PosMapBackend, PosmapPhase, RealCopySite};
use crate::shadow::{
    scheme_for_slot, DupCandidate, DupPolicy, DupQueues, DynamicPartitioner, SlotScheme,
};
use crate::stash::Stash;
use crate::tree::{BucketId, EvictionOrder, OramTree, TreeShape};
use crate::types::{Block, BlockAddr, LeafLabel, Op, Request};

/// Aggregate statistics of one controller instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OramStats {
    /// Real (CPU-originated) requests processed.
    pub real_requests: u64,
    /// Dummy requests processed (timing protection).
    pub dummy_requests: u64,
    /// Requests served by a stash hit (no path read needed).
    pub stash_served: u64,
    /// Stash-hit requests whose resident entry was a shadow or evicted
    /// copy (i.e. hits the baseline controller could not have had live).
    pub replaceable_stash_served: u64,
    /// Stash-hit requests served specifically by a shadow-kind entry — a
    /// hit class that only exists with duplication enabled (HD-Dup's
    /// "cache hot data into the stash" effect).
    pub shadow_stash_served: u64,
    /// Requests whose data was found in the on-chip treetop levels.
    pub treetop_served: u64,
    /// Requests served by the DRAM path read via a shadow copy strictly
    /// earlier than the real copy would have been.
    pub shadow_advanced: u64,
    /// Requests served by the DRAM path read (any copy).
    pub dram_served: u64,
    /// First-touch requests (no copy existed).
    pub fresh_served: u64,
    /// Sum of flat serving positions for `dram_served` accesses.
    pub served_position_sum: u64,
    /// Sum of the path positions the *real* copy occupied for accesses in
    /// `shadow_advanced` (to quantify how much earlier shadows are).
    pub real_position_sum: u64,
    /// Read-only path reads issued.
    pub ro_path_reads: u64,
    /// Evictions (read+write path pairs) issued.
    pub evictions: u64,
    /// Shadow blocks written by RD-Dup.
    pub rd_shadows_written: u64,
    /// Shadow blocks written by HD-Dup.
    pub hd_shadows_written: u64,
    /// Real blocks written back by evictions.
    pub real_blocks_written: u64,
    /// Dummy blocks written by evictions (slots no scheme could fill).
    pub dummy_blocks_written: u64,
    /// Stale copies discarded by the version/label check on load.
    pub stale_discarded: u64,
    /// Stash-resident shadow entries offered as duplication candidates
    /// across all evictions (recirculation supply).
    pub stash_shadow_candidates: u64,
    /// Shadow writes whose source was a recirculated stash shadow.
    pub recirculated_shadows: u64,
}

impl OramStats {
    /// Mean flat block position at which DRAM-served requests completed.
    pub fn mean_served_position(&self) -> f64 {
        if self.dram_served == 0 {
            0.0
        } else {
            self.served_position_sum as f64 / self.dram_served as f64
        }
    }

    /// Fraction of real requests served on chip (stash or treetop) — the
    /// paper's Fig. 16 metric.
    pub fn on_chip_hit_rate(&self) -> f64 {
        if self.real_requests == 0 {
            0.0
        } else {
            (self.stash_served + self.treetop_served) as f64 / self.real_requests as f64
        }
    }
}

/// Deliberate protocol faults for auditor validation (test-only).
///
/// The `oram-audit` crate must be able to prove that its invariant and
/// statistical layers actually catch obliviousness regressions, so this
/// enum — compiled only under the `mutants` cargo feature, which nothing
/// but audit dev-dependencies enables — injects the two canonical breaks:
/// a structural one (a bucket missing from an eviction write) and a
/// distributional one (biased leaf remapping).
#[cfg(feature = "mutants")]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mutant {
    /// No fault: the honest protocol.
    #[default]
    None,
    /// The eviction write half skips rewriting the leaf-level bucket —
    /// the "forgot to dummy-fill one bucket" class of bug. Externally
    /// visible as a short write phase.
    SkipLeafRewrite,
    /// Remaps accessed blocks to the lower half of the leaf space — the
    /// "RNG misuse" class of bug. Externally visible only statistically.
    BiasedRemap,
}

/// Continuation token between [`OramController::access_issue`] and
/// [`OramController::access_complete`], carrying the two facts the
/// completion half needs: whether a bus transaction is open at all, and
/// whether the eviction cadence fired on this access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessTicket {
    /// `true` when the issue half opened a bus transaction that still
    /// needs its completion half (always `false` for stash hits, which
    /// never reach the bus).
    open: bool,
    /// `true` when the completion half must run an eviction.
    eviction_due: bool,
}

impl AccessTicket {
    /// Whether the access still needs [`OramController::access_complete`].
    pub fn open(&self) -> bool {
        self.open
    }

    /// Whether the completion half will run an eviction pair.
    pub fn eviction_due(&self) -> bool {
        self.eviction_due
    }
}

/// The ORAM controller.
///
/// ```
/// use oram_protocol::{OramController, OramConfig, Request, BlockAddr};
///
/// # fn main() {
/// let mut ctl = OramController::new(OramConfig::small_test()).unwrap();
/// ctl.access(Request::write(BlockAddr::new(5), 1234));
/// let r = ctl.access(Request::read(BlockAddr::new(5)));
/// assert_eq!(r.value, 1234);
/// # }
/// ```
#[derive(Debug)]
pub struct OramController {
    cfg: OramConfig,
    shape: TreeShape,
    tree: OramTree,
    stash: Stash,
    /// The position-map backend selected by [`OramConfig::posmap`]
    /// (flat, sparse, or the recursive posmap-ORAM chain).
    posmap: Box<dyn PosMapBackend>,
    hot: HotAddressCache,
    eviction_order: EvictionOrder,
    dynamic: Option<DynamicPartitioner>,
    rng: Rng64,
    ro_since_eviction: u32,
    stats: OramStats,
    trace: TraceRecorder,
    /// Reusable root→leaf path buffer: after the first access it is a
    /// `path_into` refill, never a fresh allocation.
    path_buf: Vec<BucketId>,
    /// Off-chip bucket reads per tree level (index = level, `levels + 1`
    /// entries) — the bucket-touch heatmap's read axis. Preallocated, so
    /// the hot path only increments.
    level_reads: Vec<u64>,
    /// Off-chip bucket writes per tree level (eviction write half).
    level_writes: Vec<u64>,
    /// Reusable duplication-candidate queues for the eviction write
    /// half; cleared per eviction, capacity retained.
    dup_queues: DupQueues,
    /// Optional bus observer (see [`oram_util::observe`]): `None` in
    /// production, so the hot path pays one branch and nothing else.
    observer: Option<SharedObserver>,
    /// Optional telemetry sink (see [`oram_util::telemetry`]): the
    /// designer-facing counterpart of the bus observer, with the same
    /// one-branch-when-detached cost model.
    telemetry: Option<SharedTelemetry>,
    /// Injected protocol fault (auditor validation only).
    #[cfg(feature = "mutants")]
    mutant: Mutant,
}

impl OramController {
    /// Builds a controller (and its all-dummy tree) from `cfg`.
    ///
    /// # Errors
    ///
    /// Returns the validation error string if `cfg` is inconsistent.
    pub fn new(cfg: OramConfig) -> Result<Self, String> {
        cfg.validate()?;
        let shape = TreeShape::new(cfg.levels, cfg.z);
        let dynamic = match cfg.dup_policy {
            DupPolicy::Dynamic { counter_bits } => {
                Some(DynamicPartitioner::new(counter_bits, cfg.levels))
            }
            _ => None,
        };
        Ok(OramController {
            shape,
            tree: OramTree::new(shape),
            stash: Stash::new(cfg.stash_capacity),
            posmap: build_posmap(&cfg, shape),
            hot: HotAddressCache::new(cfg.hot_cache_sets, cfg.hot_cache_ways),
            eviction_order: EvictionOrder::new(cfg.levels),
            dynamic,
            rng: Rng64::seed_from_u64(cfg.seed),
            ro_since_eviction: 0,
            stats: OramStats::default(),
            trace: TraceRecorder::new(cfg.record_trace),
            path_buf: Vec::with_capacity(cfg.levels as usize + 1),
            level_reads: vec![0; cfg.levels as usize + 1],
            level_writes: vec![0; cfg.levels as usize + 1],
            dup_queues: DupQueues::new(),
            observer: None,
            telemetry: None,
            #[cfg(feature = "mutants")]
            mutant: Mutant::None,
            cfg,
        })
    }

    /// Attaches (or with `None` detaches) a bus observer receiving every
    /// externally visible event: access framing, bucket reads and writes
    /// in issue order. Stash hits emit nothing — they never reach the
    /// bus.
    pub fn set_observer(&mut self, observer: Option<SharedObserver>) {
        // The posmap backend shares the handle: recursive posmap-ORAM
        // bucket touches interleave into the same trace (as
        // `PosmapBucket` events), flat backends emit nothing.
        self.posmap.set_observer(observer.clone());
        self.observer = observer;
    }

    /// Injects a deliberate protocol fault (auditor validation only).
    #[cfg(feature = "mutants")]
    pub fn set_mutant(&mut self, mutant: Mutant) {
        self.mutant = mutant;
    }

    /// Attaches (or with `None` detaches) a telemetry sink receiving the
    /// controller-internal event stream: stash hit classes, serving
    /// positions, shadow pulls, DRI transitions, duplication-queue
    /// depths. Unlike the bus observer this sees *trusted-side* state an
    /// adversary never could.
    pub fn set_telemetry(&mut self, telemetry: Option<SharedTelemetry>) {
        self.telemetry = telemetry;
    }

    #[inline]
    fn emit(&self, event: BusEvent) {
        if let Some(obs) = &self.observer {
            obs.lock().expect("bus observer poisoned").on_event(event);
        }
    }

    #[inline]
    fn tl_count(&self, id: MetricId, delta: u64) {
        if let Some(t) = &self.telemetry {
            t.lock().expect("telemetry poisoned").count(id, delta);
        }
    }

    #[inline]
    fn tl_sample(&self, id: MetricId, value: u64) {
        if let Some(t) = &self.telemetry {
            t.lock().expect("telemetry poisoned").sample(id, value);
        }
    }

    /// The configuration this controller was built with.
    pub fn config(&self) -> &OramConfig {
        &self.cfg
    }

    /// Tree geometry.
    pub fn shape(&self) -> TreeShape {
        self.shape
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> OramStats {
        self.stats
    }

    /// Bucket-touch heatmap: off-chip bucket reads and writes per tree
    /// level (`levels + 1` entries each, index = level, root = 0).
    /// Treetop levels always read zero — they never reach the bus.
    pub fn level_touches(&self) -> (&[u64], &[u64]) {
        (&self.level_reads, &self.level_writes)
    }

    /// Stash statistics snapshot.
    pub fn stash_stats(&self) -> crate::stash::StashStats {
        self.stash.stats()
    }

    /// PLB statistics snapshot.
    pub fn plb_stats(&self) -> crate::posmap::PlbStats {
        self.posmap.plb_stats()
    }

    /// Posmap-ORAM phases queued by the most recent access's PLB-miss
    /// walk (always empty for flat backends). The engine costs these
    /// through the DRAM model before the access's data path read; they
    /// are cleared automatically at the next issue.
    pub fn posmap_pending(&self) -> &[PosmapPhase] {
        self.posmap.pending()
    }

    /// Which position-map backend is active ("flat", "sparse",
    /// "recursive").
    pub fn posmap_kind(&self) -> &'static str {
        self.posmap.kind()
    }

    /// Modeled on-chip posmap state in bytes (terminal map + PLB +
    /// level-ORAM stashes for the recursive backend; the whole table
    /// for flat ones).
    pub fn posmap_onchip_bytes(&self) -> u64 {
        self.posmap.onchip_bytes()
    }

    /// Depth of the recursive posmap-ORAM chain (0 for flat backends).
    pub fn posmap_chain_levels(&self) -> u16 {
        self.posmap.chain_levels()
    }

    /// The recorded externally visible trace (empty unless
    /// [`OramConfig::record_trace`] was set).
    pub fn trace(&self) -> &[crate::access::TraceEvent] {
        self.trace.events()
    }

    /// The current partitioning level, if a partitioned policy is active.
    pub fn partition_level(&self) -> Option<u32> {
        match self.cfg.dup_policy {
            DupPolicy::Static { partition_level } => Some(partition_level),
            DupPolicy::Dynamic { .. } => self.dynamic.as_ref().map(|d| d.level()),
            _ => None,
        }
    }

    /// Bulk-installs an initial memory image without generating ORAM
    /// traffic: each `(addr, value)` pair is mapped to a random leaf and
    /// placed in the deepest non-full bucket of its path (overflow goes to
    /// the stash). Mirrors a pre-initialized memory before measurement.
    ///
    /// # Panics
    ///
    /// Panics if the working set does not fit (more blocks than tree
    /// slots + stash) — a configuration error in the experiment.
    pub fn prefill<I: IntoIterator<Item = (BlockAddr, u64)>>(&mut self, blocks: I) {
        for (addr, value) in blocks {
            let entry = self.posmap.lookup_or_assign(addr, &mut self.rng);
            let label = entry.label;
            let blk = Block::real(addr, label, value, entry.version);
            let mut placed = false;
            // Deepest-first placement packs the tree the way long-running
            // evictions would.
            for level in (0..=self.shape.levels()).rev() {
                let bid = self.shape.bucket_on_path(label, level);
                let bucket = self.tree.bucket_mut(bid);
                if let Some(slot) = bucket.slots_mut().iter_mut().find(|s| s.is_dummy()) {
                    *slot = blk;
                    self.posmap.set_site(addr, RealCopySite::Tree { level });
                    placed = true;
                    break;
                }
            }
            if !placed {
                match self.stash.insert(blk) {
                    crate::stash::InsertOutcome::Overflow => {
                        panic!("prefill working set exceeds ORAM capacity")
                    }
                    _ => self.posmap.set_site(addr, RealCopySite::Stash),
                }
            }
            // Prefill models a pre-initialized image: posmap walks the
            // lookups triggered are warmup, never costed.
            self.posmap.clear_pending();
        }
    }

    /// Returns `true` if a request for `addr` would be served by the
    /// stash right now (a current-version resident copy exists). Lets the
    /// timing simulator serve on-chip hits without waiting for the memory
    /// pipeline — the stash CAM is a separate resource.
    pub fn stash_would_serve(&self, addr: BlockAddr) -> bool {
        self.stash
            .serving(addr)
            .is_some_and(|e| self.posmap.is_current(addr, e.block.version))
    }

    /// Processes one CPU request (Steps 1–6 of Sec. II-C).
    pub fn access(&mut self, req: Request) -> AccessResult {
        let (mut result, ticket) = self.access_issue(req);
        if let Some((er, ew)) = self.access_complete(ticket) {
            result.phases.push(er);
            result.phases.push(ew);
        }
        result
    }

    /// The issue half of [`OramController::access`] (Steps 1–3): stash
    /// query, position-map lookup and the read-only path read. Returns a
    /// result whose phase list holds at most the `ReadOnly` phase, plus a
    /// ticket for [`OramController::access_complete`].
    ///
    /// The split exists for the pipelined timing model: the completion
    /// half (the eviction, when due) can overlap the *next* access's path
    /// read in time, while the protocol state itself still mutates in
    /// strict issue order. Every open ticket must be completed before the
    /// next issue; [`OramController::access`] is exactly
    /// `access_issue` + `access_complete` and stays bit-identical.
    pub fn access_issue(&mut self, req: Request) -> (AccessResult, AccessTicket) {
        // Posmap phases queued by the previous access were costed by the
        // engine after that access; start this one with a clean queue.
        self.posmap.clear_pending();
        self.stats.real_requests += 1;
        if self.telemetry.is_none() {
            self.hot.observe(req.addr);
        } else {
            // Classify the observation by diffing the cache's own stats:
            // keeps the instrumentation out of the detached hot path and
            // the cache API unchanged.
            let before = self.hot.stats();
            self.hot.observe(req.addr);
            let after = self.hot.stats();
            self.tl_count(MetricId::HotCacheHit, after.hits - before.hits);
            self.tl_count(MetricId::HotCacheMiss, after.misses - before.misses);
            self.tl_count(MetricId::HotCacheEvict, after.evictions - before.evictions);
        }
        self.note_request_for_dynamic(true);

        // Step-1: stash query.
        if let Some(entry) = self.stash.lookup(req.addr) {
            if self.posmap.is_current(req.addr, entry.block.version) {
                let hit_shadow = entry.block.is_shadow();
                if hit_shadow {
                    self.stats.shadow_stash_served += 1;
                    self.tl_count(MetricId::StashHitShadow, 1);
                }
                let value = self.serve_stash_hit(req, entry.replaceable);
                let result = AccessResult {
                    served: ServedFrom::Stash,
                    value,
                    stash_hit_shadow: hit_shadow,
                    phases: PhaseList::new(),
                };
                // Stash hits never reach the bus: nothing to complete.
                return (result, AccessTicket { open: false, eviction_due: false });
            }
            // Stale resident copy: drop it and fall through to a full access.
            self.stash.remove(req.addr);
            self.stats.stale_discarded += 1;
            self.tl_count(MetricId::StaleDiscarded, 1);
        }

        self.emit(BusEvent::AccessStart);

        // Step-2: position map lookup (assigning a label on first touch).
        // On a recursive backend a PLB miss walks the posmap-ORAM chain
        // here, queueing costed phases the engine drains after this
        // access. PLB counters use the same diff-the-stats pattern as
        // the Hot Address Cache above.
        let entry = if self.telemetry.is_none() {
            self.posmap.lookup_or_assign(req.addr, &mut self.rng)
        } else {
            let before = self.posmap.plb_stats();
            let e = self.posmap.lookup_or_assign(req.addr, &mut self.rng);
            let after = self.posmap.plb_stats();
            self.tl_count(MetricId::PlbHit, after.hits - before.hits);
            self.tl_count(MetricId::PlbMiss, after.misses - before.misses);
            self.tl_count(MetricId::PlbEvict, after.evictions - before.evictions);
            e
        };
        let leaf = entry.label;

        // Step-3: read-only path read.
        let (ro, served, value) = self.read_only_access(leaf, Some(req));
        let mut phases = PhaseList::new();
        phases.push(ro);

        // The eviction cadence advances at issue time, so back-to-back
        // issues see the same schedule whether or not completions overlap.
        self.ro_since_eviction += 1;
        let eviction_due = self.ro_since_eviction >= self.cfg.eviction_rate - 1;
        if eviction_due {
            self.ro_since_eviction = 0;
        }

        let result = AccessResult { served, value, stash_hit_shadow: false, phases };
        (result, AccessTicket { open: true, eviction_due })
    }

    /// The completion half of [`OramController::access`] (Steps 4–6): runs
    /// the eviction when the cadence fired at issue time and closes the
    /// access frame on the bus. Returns the eviction read/write phase pair,
    /// or `None` when no eviction was due (stash-hit tickets are inert and
    /// complete to `None` immediately).
    pub fn access_complete(&mut self, ticket: AccessTicket) -> Option<(PathPhase, PathPhase)> {
        if !ticket.open {
            return None;
        }
        let evicted = if ticket.eviction_due { Some(self.evict()) } else { None };
        self.emit(BusEvent::AccessEnd);
        evicted
    }

    /// Processes one dummy request (timing protection): a read-only path
    /// read of a uniformly random path, indistinguishable from a real
    /// request, participating in the eviction schedule.
    pub fn dummy_access(&mut self) -> AccessResult {
        // Dummies never consult the position map, but the previous
        // access's costed posmap phases are done with.
        self.posmap.clear_pending();
        self.stats.dummy_requests += 1;
        self.note_request_for_dynamic(false);
        self.emit(BusEvent::AccessStart);

        let leaf = LeafLabel::new(self.rng.below(self.shape.leaf_count()));
        let (ro, _, _) = self.read_only_access(leaf, None);
        let mut phases = PhaseList::new();
        phases.push(ro);

        self.ro_since_eviction += 1;
        if self.ro_since_eviction >= self.cfg.eviction_rate - 1 {
            self.ro_since_eviction = 0;
            let (er, ew) = self.evict();
            phases.push(er);
            phases.push(ew);
        }

        self.emit(BusEvent::AccessEnd);
        AccessResult { served: ServedFrom::Stash, value: 0, stash_hit_shadow: false, phases }
    }

    fn note_request_for_dynamic(&mut self, is_real: bool) {
        let instrumented = self.telemetry.is_some();
        let Some(d) = self.dynamic.as_mut() else { return };
        if !instrumented {
            d.on_request(is_real);
            return;
        }
        let (counter_before, level_before) = (d.counter().value(), d.level());
        d.on_request(is_real);
        let (counter_after, level_after) = (d.counter().value(), d.level());
        // Transitions only: at saturation the counter does not move, so
        // Up/Down counts reflect actual state changes.
        if counter_after > counter_before {
            self.tl_count(MetricId::DriCounterUp, 1);
        } else if counter_after < counter_before {
            self.tl_count(MetricId::DriCounterDown, 1);
        }
        if level_after != level_before {
            self.tl_count(MetricId::PartitionShift, 1);
            self.tl_sample(MetricId::PartitionLevel, level_after as u64);
        }
    }

    /// Feeds the dynamic partitioner a synthetic "long gap" observation.
    ///
    /// With timing protection, long data-request intervals manifest as
    /// dummy requests, which [`OramController::dummy_access`] reports
    /// automatically. Without protection no dummies exist, so the system
    /// simulator calls this when it observes an idle interval long enough
    /// that a dummy *would* have been injected — keeping the DRI counter
    /// meaningful in both modes (Sec. IV-D2).
    pub fn record_long_gap(&mut self) {
        self.note_request_for_dynamic(false);
    }

    /// Serves a request that hit the stash; handles write promotion.
    fn serve_stash_hit(&mut self, req: Request, was_replaceable: bool) -> u64 {
        self.stats.stash_served += 1;
        if was_replaceable {
            self.stats.replaceable_stash_served += 1;
            self.tl_count(MetricId::StashHitReplaceable, 1);
        } else {
            self.tl_count(MetricId::StashHitReal, 1);
        }
        match req.op {
            Op::Read => self.stash.peek(req.addr).expect("hit entry present").block.data,
            Op::Write => {
                // Promote to a live real block with a bumped version; any
                // copies left in the tree become stale.
                let v = self.posmap.bump_version(req.addr);
                self.stash.write(req.addr, req.data, v);
                self.posmap.set_site(req.addr, RealCopySite::Stash);
                req.data
            }
        }
    }

    /// Performs the read-only path read of `leaf`. When `req` is a real
    /// request, the requested block is forwarded, remapped, and promoted
    /// live; all other current blocks enter the stash as replaceable cache
    /// copies (their tree copies remain authoritative).
    fn read_only_access(
        &mut self,
        leaf: LeafLabel,
        req: Option<Request>,
    ) -> (PathPhase, ServedFrom, u64) {
        self.stats.ro_path_reads += 1;
        let z = self.cfg.z;
        let treetop = self.cfg.treetop_levels;
        let mut path = std::mem::take(&mut self.path_buf);
        self.shape.path_into(leaf, &mut path);

        let mut served: Option<ServedFrom> = None;
        let mut value = 0u64;
        let mut dram_index = 0usize;
        // Count DRAM blocks for this read up front (levels outside the
        // treetop), so early-exit bookkeeping can't skew it.
        let dram_levels = path.len() - (treetop as usize).min(path.len());
        let blocks_in_path = dram_levels * z;

        self.emit(BusEvent::PhaseStart(BusPhase::ReadOnly));
        for (level, &bid) in path.iter().enumerate() {
            let on_chip = (level as u32) < treetop;
            if !on_chip {
                self.trace.record(bid, false);
                self.level_reads[level] += 1;
                self.emit(BusEvent::Bucket { bucket: bid.raw(), write: false });
            }
            for slot in 0..z {
                let blk = self.tree.bucket(bid).slots()[slot];
                let flat = if on_chip { None } else { Some(dram_index) };
                if !on_chip {
                    dram_index += 1;
                }
                if blk.is_dummy() {
                    continue;
                }
                // Stale-copy invalidation (version or label mismatch).
                let current = self.posmap.is_current(blk.addr, blk.version)
                    && self.posmap.peek(blk.addr).map(|e| e.label) == Some(blk.label);
                if !current {
                    self.stats.stale_discarded += 1;
                    self.tl_count(MetricId::StaleDiscarded, 1);
                    continue;
                }
                // Algorithm 2 inserts "real or shadow" blocks. Tiny ORAM's
                // read-only phase writes nothing back, so non-requested
                // *real* blocks stay authoritative in the tree and are not
                // moved (RAW ORAM semantics — pulling whole paths live
                // would grow the stash without bound). Shadow blocks *are*
                // inserted, always replaceable (Rule-3): resident shadows
                // are both HD-Dup's on-chip cache of hot data and the
                // recirculation supply that re-propagates shadows at the
                // next eviction. The requested block itself is promoted to
                // a live resident (and remapped) after the loop.
                if blk.is_shadow() || Some(blk.addr) == req.map(|r| r.addr) {
                    if blk.is_shadow() {
                        self.tl_count(MetricId::ShadowStashPull, 1);
                    }
                    self.stash.insert(blk);
                }
                // Forward the requested data on its first current copy.
                if let Some(r) = req {
                    if blk.addr == r.addr && served.is_none() {
                        value = blk.data;
                        served = Some(match flat {
                            None => ServedFrom::Treetop,
                            Some(ix) => ServedFrom::Dram {
                                block_index: ix,
                                blocks_in_path,
                                via_shadow: blk.is_shadow(),
                            },
                        });
                    }
                }
            }
        }

        self.emit(BusEvent::PhaseEnd(BusPhase::ReadOnly));
        let phase = PathPhase::new(PhaseKind::ReadOnly, leaf, self.shape, treetop);

        // Post-processing for a real request: apply the op, remap, promote.
        let served = if let Some(r) = req {
            let served = served.unwrap_or(ServedFrom::Fresh { blocks_in_path });
            match served {
                ServedFrom::Treetop => {
                    self.stats.treetop_served += 1;
                    self.tl_count(MetricId::TreetopServed, 1);
                }
                ServedFrom::Dram { block_index, via_shadow, .. } => {
                    self.stats.dram_served += 1;
                    self.stats.served_position_sum += block_index as u64;
                    self.tl_sample(MetricId::ServedPosition, block_index as u64);
                    if via_shadow {
                        self.stats.shadow_advanced += 1;
                        self.tl_count(MetricId::DramServedShadow, 1);
                        // Locate the real copy's position for the advance
                        // metric: it is the last current copy on the path.
                        if let Some(real_ix) =
                            self.real_copy_flat_index(&path, r.addr, treetop, z)
                        {
                            self.stats.real_position_sum += real_ix as u64;
                            self.tl_sample(MetricId::RealPosition, real_ix as u64);
                            self.tl_sample(
                                MetricId::AdvanceDepth,
                                (real_ix as u64).saturating_sub(block_index as u64),
                            );
                        }
                    } else {
                        self.tl_count(MetricId::DramServedReal, 1);
                    }
                }
                ServedFrom::Fresh { .. } => {
                    self.stats.fresh_served += 1;
                    self.tl_count(MetricId::FreshServed, 1);
                }
                ServedFrom::Stash => {}
            }

            // The accessed block is now live in the stash: ensure it exists
            // (fresh addresses materialize here), apply the write, remap.
            let new_label = self.fresh_label();
            let version = match r.op {
                Op::Write => self.posmap.bump_version(r.addr),
                Op::Read => self.posmap.version(r.addr),
            };
            let data = match r.op {
                Op::Write => r.data,
                Op::Read => value,
            };
            if self.stash.peek(r.addr).is_some() {
                self.stash.write(r.addr, data, version);
                self.stash.relabel(r.addr, new_label, version);
            } else {
                // Fresh address (or the copy was dropped as stale): create
                // the block in the stash.
                let outcome = self.stash.insert(Block::real(r.addr, new_label, data, version));
                assert!(
                    !matches!(outcome, crate::stash::InsertOutcome::Overflow),
                    "stash overflow inserting the accessed block: the \
                     security parameter (stash capacity) is too small"
                );
            }
            // Remap: update the position map to the new label.
            self.posmap.remap_to(r.addr, new_label);
            self.posmap.set_site(r.addr, RealCopySite::Stash);
            served
        } else {
            ServedFrom::Stash
        };

        self.path_buf = path;
        (phase, served, value)
    }

    /// Whether the injected mutant suppresses the rewrite (and therefore
    /// the bus write) of the path slot at `level_idx`. Always `false`
    /// without the `mutants` feature.
    #[inline]
    fn skip_rewrite(&self, level_idx: usize, path_len: usize) -> bool {
        #[cfg(feature = "mutants")]
        {
            self.mutant == Mutant::SkipLeafRewrite && level_idx + 1 == path_len
        }
        #[cfg(not(feature = "mutants"))]
        {
            let _ = (level_idx, path_len);
            false
        }
    }

    /// Draws the uniform random leaf a remapped block moves to.
    #[inline]
    fn fresh_label(&mut self) -> LeafLabel {
        #[cfg(feature = "mutants")]
        if self.mutant == Mutant::BiasedRemap {
            return LeafLabel::new(self.rng.below(self.shape.leaf_count()) / 2);
        }
        LeafLabel::new(self.rng.below(self.shape.leaf_count()))
    }

    /// Flat DRAM index of the authoritative real copy of `addr` on `path`
    /// (used only for statistics).
    fn real_copy_flat_index(
        &self,
        path: &[BucketId],
        addr: BlockAddr,
        treetop: u32,
        z: usize,
    ) -> Option<usize> {
        let mut flat = 0usize;
        for (level, &bid) in path.iter().enumerate() {
            let on_chip = (level as u32) < treetop;
            for slot in 0..z {
                let blk = self.tree.bucket(bid).slots()[slot];
                if !on_chip {
                    if blk.is_real()
                        && blk.addr == addr
                        && self.posmap.is_current(addr, blk.version)
                    {
                        return Some(flat);
                    }
                    flat += 1;
                } else if blk.is_real() && blk.addr == addr {
                    return Some(0);
                }
            }
        }
        None
    }

    /// One eviction: read the next reverse-lexicographic path into the
    /// stash (live), then rewrite it greedily from the stash, filling
    /// leftover dummy slots with shadow blocks per the duplication policy
    /// (Algorithm 1).
    fn evict(&mut self) -> (PathPhase, PathPhase) {
        self.stats.evictions += 1;
        self.tl_count(MetricId::Evictions, 1);
        self.tl_sample(MetricId::StashOccupancy, self.stash.live() as u64);
        let leaf = self.eviction_order.next_leaf();
        let z = self.cfg.z;
        let treetop = self.cfg.treetop_levels;
        let mut path = std::mem::take(&mut self.path_buf);
        self.shape.path_into(leaf, &mut path);

        // ---- Read half: pull every current block on the path live. ----
        self.emit(BusEvent::PhaseStart(BusPhase::EvictionRead));
        for (level, &bid) in path.iter().enumerate() {
            let on_chip = (level as u32) < treetop;
            if !on_chip {
                self.trace.record(bid, false);
                self.level_reads[level] += 1;
                self.emit(BusEvent::Bucket { bucket: bid.raw(), write: false });
            }
            for slot in 0..z {
                let blk = self.tree.bucket(bid).slots()[slot];
                if blk.is_dummy() {
                    continue;
                }
                let current = self.posmap.is_current(blk.addr, blk.version)
                    && self.posmap.peek(blk.addr).map(|e| e.label) == Some(blk.label);
                if !current {
                    self.stats.stale_discarded += 1;
                    self.tl_count(MetricId::StaleDiscarded, 1);
                    continue;
                }
                if blk.is_real() {
                    let outcome = self.stash.insert(blk);
                    assert!(
                        !matches!(outcome, crate::stash::InsertOutcome::Overflow),
                        "stash overflow during eviction read: the security \
                         parameter (stash capacity) is too small for this run"
                    );
                    // The tree copy is about to be destroyed by the write
                    // half: the stash copy must be live.
                    self.stash.ensure_live(blk.addr);
                    self.posmap.set_site(blk.addr, RealCopySite::Stash);
                } else {
                    self.tl_count(MetricId::ShadowStashPull, 1);
                    self.stash.insert(blk);
                }
            }
        }
        self.emit(BusEvent::PhaseEnd(BusPhase::EvictionRead));

        // ---- Write half: Algorithm 1, leaf to root. ----
        let partition_level = self.current_partition_level();
        self.dup_queues.clear();
        // Stash-resident shadows whose real copy is in the tree are also
        // duplication candidates (Sec. V-B2) — this recirculation is what
        // lets a block's shadow outlive the rewriting of its bucket.
        let mut stash_shadow_count = 0u64;
        let recirculate = self.cfg.recirculate_stash_shadows;
        for entry in self.stash.shadow_entries().filter(|_| recirculate) {
            let blk = entry.block;
            if !self.posmap.is_current(blk.addr, blk.version) {
                continue;
            }
            if let Some(pe) = self.posmap.peek(blk.addr) {
                if let RealCopySite::Tree { level } = pe.site {
                    stash_shadow_count += 1;
                    self.dup_queues.push(DupCandidate {
                        addr: blk.addr,
                        label: blk.label,
                        data: blk.data,
                        version: blk.version,
                        real_level: level,
                        recirculated: true,
                    });
                }
            }
        }
        self.stats.stash_shadow_candidates += stash_shadow_count;
        // Recirculation supply available to this eviction's write half.
        self.tl_sample(MetricId::DupQueueDepth, self.dup_queues.len() as u64);

        // The slot-filling loop below runs leaf-first (Algorithm 1), but
        // the bus issues the rewritten path root-side first to match the
        // read pipeline — exactly the bucket order `PathPhase` derives —
        // so the observer sees the phase in issue order here.
        self.emit(BusEvent::PhaseStart(BusPhase::EvictionWrite));
        for (level_idx, &bid) in path.iter().enumerate() {
            if (level_idx as u32) < treetop || self.skip_rewrite(level_idx, path.len()) {
                continue;
            }
            self.level_writes[level_idx] += 1;
            self.emit(BusEvent::Bucket { bucket: bid.raw(), write: true });
        }
        self.emit(BusEvent::PhaseEnd(BusPhase::EvictionWrite));

        for (level_idx, &bid) in path.iter().enumerate().rev() {
            if self.skip_rewrite(level_idx, path.len()) {
                continue;
            }
            let level = level_idx as u32;
            let on_chip = level < treetop;
            if !on_chip {
                self.trace.record(bid, true);
            }
            for slot in 0..z {
                // stash_blk_select: deepest-fitting live block.
                let chosen =
                    self.stash.select_for_eviction(&self.shape, leaf, level);
                let new_block = if let Some(addr) = chosen {
                    let blk = self.stash.mark_evicted(addr);
                    self.posmap.set_site(addr, RealCopySite::Tree { level });
                    self.stats.real_blocks_written += 1;
                    // Freshly written blocks become duplication candidates
                    // for shallower (later-written) slots.
                    self.dup_queues.push(DupCandidate {
                        addr: blk.addr,
                        label: blk.label,
                        data: blk.data,
                        version: blk.version,
                        real_level: level,
                        recirculated: false,
                    });
                    blk
                } else {
                    // dup_blk_select: fill the dummy with a shadow copy.
                    match scheme_for_slot(self.cfg.dup_policy, partition_level, level) {
                        SlotScheme::Rd => {
                            match self.dup_queues.select_rd_with(
                                &self.shape,
                                leaf,
                                level,
                                self.cfg.chain_duplication,
                            ) {
                                Some(c) => {
                                    self.stats.rd_shadows_written += 1;
                                    self.tl_count(MetricId::RdShadowWritten, 1);
                                    if c.recirculated {
                                        self.stats.recirculated_shadows += 1;
                                        self.tl_count(MetricId::RecirculatedShadow, 1);
                                    }
                                    c.to_shadow_block()
                                }
                                None => self.dummy_write(),
                            }
                        }
                        SlotScheme::Hd => {
                            match self.dup_queues.select_hd_with(
                                &self.shape,
                                leaf,
                                level,
                                &self.hot,
                                self.cfg.chain_duplication,
                            ) {
                                Some(c) => {
                                    self.stats.hd_shadows_written += 1;
                                    self.tl_count(MetricId::HdShadowWritten, 1);
                                    if c.recirculated {
                                        self.stats.recirculated_shadows += 1;
                                        self.tl_count(MetricId::RecirculatedShadow, 1);
                                    }
                                    c.to_shadow_block()
                                }
                                None => self.dummy_write(),
                            }
                        }
                        SlotScheme::None => self.dummy_write(),
                    }
                };
                self.tree.bucket_mut(bid).slots_mut()[slot] = new_block;
            }
        }
        self.dup_queues.clear();
        self.path_buf = path;

        // The write loop above fills leaf-first, but the DRAM write order
        // is the controller's choice: the phase describes it root-side
        // first to match the read pipeline, which is exactly the derived
        // bucket order of `PathPhase`.
        (
            PathPhase::new(PhaseKind::EvictionRead, leaf, self.shape, treetop),
            PathPhase::new(PhaseKind::EvictionWrite, leaf, self.shape, treetop),
        )
    }

    fn dummy_write(&mut self) -> Block {
        self.stats.dummy_blocks_written += 1;
        self.tl_count(MetricId::DummyBlockWritten, 1);
        Block::DUMMY
    }

    fn current_partition_level(&self) -> u32 {
        match self.cfg.dup_policy {
            DupPolicy::Static { partition_level } => partition_level,
            DupPolicy::Dynamic { .. } => {
                self.dynamic.as_ref().map(|d| d.level()).unwrap_or(0)
            }
            DupPolicy::RdOnly => 0,
            DupPolicy::HdOnly => self.cfg.levels + 1,
            DupPolicy::Off => 0,
        }
    }

    /// Checks the Path ORAM invariant for every current block: the live
    /// copy of each address is either in the stash or on the path to its
    /// label, and every current shadow sits strictly root-ward of its real
    /// copy. O(tree); test/diagnostic use only.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn check_invariants(&self) -> Result<(), String> {
        let shape = self.shape;
        for raw in 1..=shape.bucket_count() {
            let bid = BucketId::new(raw);
            let level = bid.level();
            for blk in self.tree.bucket(bid).slots() {
                if blk.is_dummy() {
                    continue;
                }
                let Some(pe) = self.posmap.peek(blk.addr) else {
                    return Err(format!("tree block {} unknown to posmap", blk.addr));
                };
                let current = pe.version == blk.version && pe.label == blk.label;
                if !current {
                    continue; // stale copies are permitted garbage
                }
                // Rule-1 / Path ORAM invariant: on the path to its label.
                if shape.bucket_on_path(blk.label, level) != bid {
                    return Err(format!(
                        "{} ({}) at bucket {} level {} is off the path to {}",
                        blk.addr, blk.kind, raw, level, blk.label
                    ));
                }
                // Rule-2 is enforced at creation time (see
                // `DupCandidate::eligible_at`); a later eviction may
                // re-place the real copy root-ward of an old shadow, which
                // is harmless: both copies are current, identical, and on
                // the label path, so any load of one loads the other.
                // Here we only require that current shadows carry data
                // matching the live copy's version, which the `current`
                // check above already guaranteed.
            }
        }
        Ok(())
    }

    /// Immutable view of the tree (diagnostics / tests).
    pub fn tree(&self) -> &OramTree {
        &self.tree
    }

    /// Immutable view of the stash (diagnostics / tests).
    pub fn stash(&self) -> &Stash {
        &self.stash
    }

    /// Immutable view of the Hot Address Cache (diagnostics / tests).
    pub fn hot_cache(&self) -> &HotAddressCache {
        &self.hot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shadow::DupPolicy;

    fn controller(policy: DupPolicy) -> OramController {
        OramController::new(OramConfig::small_test().with_dup_policy(policy)).unwrap()
    }

    #[test]
    fn level_touches_cover_offchip_levels_only() {
        let mut ctl = controller(DupPolicy::RdOnly);
        run_workload(&mut ctl, 200);
        let treetop = ctl.config().treetop_levels as usize;
        let (reads, writes) = ctl.level_touches();
        assert_eq!(reads.len(), ctl.config().levels as usize + 1);
        assert_eq!(writes.len(), reads.len());
        assert!(reads[..treetop].iter().all(|&n| n == 0), "treetop never reaches the bus");
        assert!(writes[..treetop].iter().all(|&n| n == 0));
        assert!(reads[treetop..].iter().all(|&n| n > 0), "every off-chip level read");
        assert!(writes[treetop..].iter().all(|&n| n > 0), "evictions rewrite every level");
        // Stash hits add no touches: reads per level equals path reads.
        let path_reads = ctl.stats().ro_path_reads + ctl.stats().evictions;
        assert!(reads[treetop..].iter().all(|&n| n == path_reads));
    }

    fn run_workload(ctl: &mut OramController, n: u64) {
        // Interleaved writes and reads over a modest working set.
        for i in 0..n {
            let addr = BlockAddr::new(i % 37);
            if i % 3 == 0 {
                ctl.access(Request::write(addr, i));
            } else {
                ctl.access(Request::read(addr));
            }
        }
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut ctl = controller(DupPolicy::Off);
        ctl.access(Request::write(BlockAddr::new(9), 77));
        let r = ctl.access(Request::read(BlockAddr::new(9)));
        assert_eq!(r.value, 77);
    }

    #[test]
    fn fresh_read_returns_zero() {
        let mut ctl = controller(DupPolicy::Off);
        let r = ctl.access(Request::read(BlockAddr::new(1000)));
        assert_eq!(r.value, 0);
        assert!(matches!(r.served, ServedFrom::Fresh { .. }));
    }

    #[test]
    fn consistency_against_reference_model_all_policies() {
        for policy in [
            DupPolicy::Off,
            DupPolicy::RdOnly,
            DupPolicy::HdOnly,
            DupPolicy::Static { partition_level: 3 },
            DupPolicy::Dynamic { counter_bits: 3 },
        ] {
            let mut ctl = controller(policy);
            let mut reference = std::collections::HashMap::new();
            let mut x = 0x9E3779B97F4A7C15u64;
            for step in 0..3000u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let addr = BlockAddr::new(x % 61);
                if x % 5 < 2 {
                    ctl.access(Request::write(addr, step));
                    reference.insert(addr, step);
                } else {
                    let r = ctl.access(Request::read(addr));
                    let expect = reference.get(&addr).copied().unwrap_or(0);
                    assert_eq!(
                        r.value, expect,
                        "policy {policy:?} step {step} addr {addr}"
                    );
                }
                if step % 500 == 0 {
                    ctl.check_invariants().expect("invariants hold");
                }
            }
            ctl.check_invariants().expect("final invariants");
        }
    }

    #[test]
    fn evictions_fire_every_a_minus_one_accesses() {
        let mut ctl = controller(DupPolicy::Off);
        let a = ctl.config().eviction_rate;
        run_workload(&mut ctl, 100);
        let s = ctl.stats();
        // Only path-reading accesses advance the schedule.
        let expected = s.ro_path_reads / (a as u64 - 1);
        assert_eq!(s.evictions, expected);
    }

    #[test]
    fn shadow_blocks_appear_with_duplication_enabled() {
        let mut ctl = controller(DupPolicy::RdOnly);
        run_workload(&mut ctl, 400);
        assert!(ctl.stats().rd_shadows_written > 0, "RD-Dup wrote shadows");
        assert!(ctl.tree().shadow_block_count() > 0);
        ctl.check_invariants().unwrap();
    }

    #[test]
    fn baseline_never_writes_shadows() {
        let mut ctl = controller(DupPolicy::Off);
        run_workload(&mut ctl, 400);
        assert_eq!(ctl.stats().rd_shadows_written, 0);
        assert_eq!(ctl.stats().hd_shadows_written, 0);
        assert_eq!(ctl.tree().shadow_block_count(), 0);
    }

    #[test]
    fn rd_dup_advances_served_positions() {
        let mut base = controller(DupPolicy::Off);
        let mut rd = controller(DupPolicy::RdOnly);
        // Cyclic reads over a set large enough to miss the stash.
        for i in 0..4000u64 {
            let addr = BlockAddr::new(i % 97);
            base.access(Request::read(addr));
            rd.access(Request::read(addr));
        }
        assert!(rd.stats().shadow_advanced > 0, "some accesses were advanced");
        assert!(
            rd.stats().mean_served_position() < base.stats().mean_served_position(),
            "RD-Dup should reduce the mean serving position: {} vs {}",
            rd.stats().mean_served_position(),
            base.stats().mean_served_position()
        );
    }

    #[test]
    fn hd_dup_increases_stash_hits_on_hot_data() {
        let mut base = controller(DupPolicy::Off);
        let mut hd = controller(DupPolicy::HdOnly);
        // 60% of accesses hit a 24-address hot set whose recurrence
        // interval (~40 accesses) outlives the stash's natural caching
        // window but fits the lifetime of root-ward shadow copies; the
        // rest is a cold stream. Total working set stays below half the
        // tree.
        let mut x = 1234567u64;
        for i in 0..6000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = if x % 10 < 6 {
                BlockAddr::new(x % 24)
            } else {
                BlockAddr::new(1000 + (i % 120))
            };
            base.access(Request::read(addr));
            hd.access(Request::read(addr));
        }
        // The mechanism: shadow-kind stash hits exist only under HD-Dup.
        assert!(
            hd.stats().shadow_stash_served > 0,
            "HD-Dup should serve some requests from shadow stash entries"
        );
        assert_eq!(base.stats().shadow_stash_served, 0);
        assert!(hd.stats().hd_shadows_written > 0);
        // And it must not meaningfully hurt overall on-chip hits at this
        // toy scale (the quantitative gain is a system-level experiment,
        // reproduced as Fig. 16 by the bench harness).
        assert!(
            hd.stats().stash_served as f64 >= base.stats().stash_served as f64 * 0.9,
            "HD-Dup regressed stash hits: {} vs {}",
            hd.stats().stash_served,
            base.stats().stash_served
        );
    }

    #[test]
    fn dummy_accesses_produce_phases_but_serve_nothing() {
        let mut ctl = controller(DupPolicy::Off);
        let r = ctl.dummy_access();
        assert_eq!(r.phases.len(), 1);
        assert_eq!(r.phases[0].kind, PhaseKind::ReadOnly);
        assert_eq!(ctl.stats().dummy_requests, 1);
        assert_eq!(ctl.stats().real_requests, 0);
    }

    #[test]
    fn treetop_serves_top_levels_on_chip() {
        let run = |treetop: u32| {
            let cfg = OramConfig::small_test()
                .with_dup_policy(DupPolicy::RdOnly)
                .with_treetop(treetop);
            let mut ctl = OramController::new(cfg).unwrap();
            for i in 0..4000u64 {
                ctl.access(Request::read(BlockAddr::new(i % 150)));
            }
            ctl
        };
        let with_tt = run(3);
        let without_tt = run(0);
        // Treetop levels are excluded from DRAM phases, so the mean DRAM
        // serving position drops when the shadow-rich top levels are held
        // on chip.
        assert!(
            with_tt.stats().mean_served_position()
                < without_tt.stats().mean_served_position(),
            "treetop should shave root-side DRAM blocks: {} vs {}",
            with_tt.stats().mean_served_position(),
            without_tt.stats().mean_served_position()
        );
        assert!(with_tt.stats().on_chip_hit_rate() > 0.2, "on-chip hits exist");
        // DRAM phases exclude treetop buckets.
        let mut ctl = with_tt;
        let r = ctl.access(Request::read(BlockAddr::new(5000)));
        for p in &r.phases {
            for b in p.buckets() {
                assert!(b.level() >= 3, "treetop bucket leaked into DRAM phase");
            }
        }
    }

    #[test]
    fn prefill_places_blocks_and_preserves_invariants() {
        let mut ctl = controller(DupPolicy::Off);
        ctl.prefill((0..200u64).map(|i| (BlockAddr::new(i), i * 7)));
        ctl.check_invariants().unwrap();
        for i in (0..200u64).step_by(17) {
            let r = ctl.access(Request::read(BlockAddr::new(i)));
            assert_eq!(r.value, i * 7);
        }
    }

    #[test]
    fn trace_records_bus_events_when_enabled() {
        let cfg = OramConfig::small_test().with_trace();
        let mut ctl = OramController::new(cfg).unwrap();
        ctl.access(Request::read(BlockAddr::new(1)));
        assert!(!ctl.trace().is_empty());
        // A read-only access touches exactly L+1 buckets.
        assert_eq!(ctl.trace().len(), ctl.shape().levels() as usize + 1);
    }

    #[test]
    fn stats_positions_are_consistent() {
        let mut ctl = controller(DupPolicy::RdOnly);
        run_workload(&mut ctl, 2000);
        let s = ctl.stats();
        let max_pos = (ctl.shape().blocks_per_path() - 1) as f64;
        let mean = s.mean_served_position();
        assert!((0.0..=max_pos).contains(&mean), "mean {mean} out of range");
    }

    #[test]
    fn hd_dup_runs_with_disabled_hot_cache() {
        // Size-0 Hot Address Cache: HD-Dup must still be functional
        // (arbitrary candidate choice), just unguided.
        let mut cfg = OramConfig::small_test().with_dup_policy(DupPolicy::HdOnly);
        cfg.hot_cache_sets = 0;
        let mut ctl = OramController::new(cfg).unwrap();
        assert!(!ctl.hot_cache().is_enabled());
        run_workload(&mut ctl, 600);
        assert!(ctl.stats().hd_shadows_written > 0, "HD-Dup still fills slots");
        ctl.check_invariants().unwrap();
    }

    #[test]
    fn hot_cache_counters_survive_posmap_remaps() {
        // The Hot Address Cache is keyed by program address; every access
        // remaps the block to a new leaf, and hotness must accumulate
        // across those remaps rather than reset.
        let mut ctl = controller(DupPolicy::HdOnly);
        for _ in 0..8 {
            ctl.access(Request::read(BlockAddr::new(3)));
        }
        assert_eq!(ctl.hot_cache().priority(BlockAddr::new(3)), 8);
    }

    #[test]
    fn dynamic_policy_reports_partition_level() {
        let ctl = controller(DupPolicy::Dynamic { counter_bits: 3 });
        assert!(ctl.partition_level().is_some());
        let ctl = controller(DupPolicy::Off);
        assert!(ctl.partition_level().is_none());
    }

    #[test]
    fn split_phase_access_matches_monolithic_access() {
        // access() is defined as issue + complete; a controller driven
        // through the split API must stay bit-identical to one driven
        // through the monolithic call — results, stats, and trace.
        let cfg = OramConfig::small_test().with_trace();
        let mut whole = OramController::new(cfg).unwrap();
        let mut split = OramController::new(cfg).unwrap();
        for i in 0..500u64 {
            let addr = BlockAddr::new((i * 13) % 96);
            let req = if i % 5 == 0 { Request::write(addr, i) } else { Request::read(addr) };
            let a = whole.access(req);
            let (mut b, ticket) = split.access_issue(req);
            assert!(b.phases.len() <= 1, "issue half carries at most the RO phase");
            if let Some((er, ew)) = split.access_complete(ticket) {
                assert!(ticket.eviction_due());
                b.phases.push(er);
                b.phases.push(ew);
            }
            assert_eq!(a, b, "access {i}");
        }
        assert_eq!(whole.stats(), split.stats());
        assert_eq!(whole.trace(), split.trace());
    }

    #[test]
    fn stash_hit_tickets_are_inert() {
        let mut ctl = controller(DupPolicy::Off);
        ctl.access(Request::write(BlockAddr::new(7), 1));
        // The fresh write leaves the block stash-resident; the re-read is
        // a pure stash hit whose ticket completes to nothing.
        let (r, ticket) = ctl.access_issue(Request::read(BlockAddr::new(7)));
        assert_eq!(r.served, ServedFrom::Stash);
        assert!(!ticket.open());
        assert!(!ticket.eviction_due());
        assert!(ctl.access_complete(ticket).is_none());
    }
}

//! Position map and PosMap Lookup Buffer (PLB).
//!
//! The position map is the trusted lookup table from program address to
//! current leaf label. Real hardware recurses the map into the ORAM itself
//! and fronts it with a PLB (Freecursive ORAM [14]); following the paper's
//! baseline ("unified program address space to address external position
//! map issue"), we keep the map on-chip logically and model the PLB as a
//! cache whose hit/miss statistics the simulator can charge latency for.
//!
//! Beyond the label, the controller tracks two pieces of trusted metadata
//! per address:
//!
//! * a **version** counter used to invalidate stale copies, and
//! * the **tree level** of the authoritative real copy (`None` while the
//!   live copy sits in the stash), which Rule-2 needs when duplicating a
//!   stash-resident shadow candidate.
//!
//! Storage is a flat `Vec<PosEntry>` indexed by block address — program
//! addresses are dense small integers here, exactly the layout real
//! position-map hardware assumes — so the per-access lookup is one bounds
//! check and one indexed load instead of a `HashMap` probe, and it stops
//! allocating once the working set has been touched.

use oram_util::Rng64;

use crate::types::{BlockAddr, LeafLabel, Version};

/// Where the authoritative real copy of an address currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RealCopySite {
    /// Live copy is in the stash (possibly marked replaceable after an
    /// eviction, in which case an identical copy also sits in the tree).
    Stash,
    /// Live copy is in the ORAM tree at the given level on its label path.
    Tree {
        /// Level of the bucket holding the copy (0 = root).
        level: u32,
    },
    /// The address has never been written: reads return the configured
    /// fill value and the first access materializes the block.
    Unmapped,
}

/// One position-map record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PosEntry {
    /// Current leaf label.
    pub label: LeafLabel,
    /// Latest version; any copy with a smaller version is stale.
    pub version: Version,
    /// Where the live real copy is.
    pub site: RealCopySite,
}

/// Label sentinel marking a never-assigned slot in the flat table. Real
/// labels are `< leaf_count`, so the all-ones label can never collide
/// with one.
const UNASSIGNED: LeafLabel = LeafLabel::new(u64::MAX);

const VACANT: PosEntry =
    PosEntry { label: UNASSIGNED, version: 0, site: RealCopySite::Unmapped };

/// Statistics for the PLB model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlbStats {
    /// PLB hits.
    pub hits: u64,
    /// PLB misses.
    pub misses: u64,
}

impl PlbStats {
    /// Hit rate in `[0, 1]`; `1.0` when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The position map with its PLB front.
#[derive(Debug, Clone)]
pub struct PositionMap {
    leaf_count: u64,
    /// Flat table indexed by raw block address; [`UNASSIGNED`] labels
    /// mark never-touched addresses. Grows geometrically on first touch
    /// of a new high-water address and never shrinks, so steady-state
    /// lookups are allocation-free.
    entries: Vec<PosEntry>,
    /// PLB: a direct-mapped cache over position-map *pages*; each page
    /// covers `plb_page_addrs` consecutive block addresses.
    plb_sets: Vec<Option<u64>>,
    plb_page_addrs: u64,
    plb_stats: PlbStats,
}

impl PositionMap {
    /// Creates a position map for a tree with `leaf_count` leaves and a
    /// PLB of `plb_entries` page entries, each covering `plb_page_addrs`
    /// consecutive addresses (64 KB PLB with 64 B lines over 4 B entries →
    /// 1024 entries × 16 addresses in the paper's configuration).
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(leaf_count: u64, plb_entries: usize, plb_page_addrs: u64) -> Self {
        assert!(leaf_count > 0 && plb_entries > 0 && plb_page_addrs > 0);
        PositionMap {
            leaf_count,
            entries: Vec::new(),
            plb_sets: vec![None; plb_entries],
            plb_page_addrs,
            plb_stats: PlbStats::default(),
        }
    }

    /// Number of leaves (labels are drawn from `0..leaf_count`).
    pub fn leaf_count(&self) -> u64 {
        self.leaf_count
    }

    /// PLB statistics.
    pub fn plb_stats(&self) -> PlbStats {
        self.plb_stats
    }

    /// Entry slot for `addr`, growing the flat table if this is a new
    /// high-water address.
    fn slot_mut(&mut self, addr: BlockAddr) -> &mut PosEntry {
        let ix = addr.raw() as usize;
        if ix >= self.entries.len() {
            let new_len = (ix + 1).max(self.entries.len() * 2);
            self.entries.resize(new_len, VACANT);
        }
        &mut self.entries[ix]
    }

    #[inline]
    fn get(&self, addr: BlockAddr) -> Option<&PosEntry> {
        self.entries.get(addr.raw() as usize).filter(|e| e.label != UNASSIGNED)
    }

    /// Looks up (creating on first touch) the entry for `addr`, assigning a
    /// fresh random label to never-seen addresses. Also runs the PLB model.
    pub fn lookup_or_assign(&mut self, addr: BlockAddr, rng: &mut Rng64) -> PosEntry {
        self.touch_plb(addr);
        let leaf_count = self.leaf_count;
        let e = self.slot_mut(addr);
        if e.label == UNASSIGNED {
            e.label = LeafLabel::new(rng.below(leaf_count));
        }
        *e
    }

    /// Peeks at the entry without creating it or touching the PLB.
    #[inline]
    pub fn peek(&self, addr: BlockAddr) -> Option<PosEntry> {
        self.get(addr).copied()
    }

    /// Remaps `addr` to a fresh uniformly random leaf, returning the new
    /// label. The entry must exist.
    ///
    /// # Panics
    ///
    /// Panics if `addr` has never been looked up.
    pub fn remap(&mut self, addr: BlockAddr, rng: &mut Rng64) -> LeafLabel {
        let label = LeafLabel::new(rng.below(self.leaf_count));
        self.remap_to(addr, label);
        label
    }

    /// Remaps `addr` to the given label (the controller draws the random
    /// label itself so that its RNG consumption is policy-independent).
    ///
    /// # Panics
    ///
    /// Panics if `addr` has never been looked up or `label` is out of
    /// range.
    pub fn remap_to(&mut self, addr: BlockAddr, label: LeafLabel) {
        assert!(label.raw() < self.leaf_count, "label out of range");
        let e = self.slot_mut(addr);
        assert!(e.label != UNASSIGNED, "remap of unknown address");
        e.label = label;
    }

    /// Bumps and returns the version for `addr` (CPU write or shadow
    /// promotion). The entry must exist.
    ///
    /// # Panics
    ///
    /// Panics if `addr` has never been looked up.
    pub fn bump_version(&mut self, addr: BlockAddr) -> Version {
        let e = self.slot_mut(addr);
        assert!(e.label != UNASSIGNED, "version bump of unknown address");
        e.version += 1;
        e.version
    }

    /// Records where the live real copy of `addr` now resides (no-op for
    /// addresses never looked up).
    pub fn set_site(&mut self, addr: BlockAddr, site: RealCopySite) {
        if let Some(e) = self
            .entries
            .get_mut(addr.raw() as usize)
            .filter(|e| e.label != UNASSIGNED)
        {
            e.site = site;
        }
    }

    /// Current version for `addr` (0 if never seen).
    #[inline]
    pub fn version(&self, addr: BlockAddr) -> Version {
        self.get(addr).map_or(0, |e| e.version)
    }

    /// Returns `true` if the given copy metadata is current (not stale).
    #[inline]
    pub fn is_current(&self, addr: BlockAddr, version: Version) -> bool {
        self.version(addr) == version
    }

    /// Direct-mapped PLB access for the page containing `addr`.
    fn touch_plb(&mut self, addr: BlockAddr) {
        let page = addr.raw() / self.plb_page_addrs;
        let set = (page % self.plb_sets.len() as u64) as usize;
        if self.plb_sets[set] == Some(page) {
            self.plb_stats.hits += 1;
        } else {
            self.plb_stats.misses += 1;
            self.plb_sets[set] = Some(page);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assigns_labels_in_range() {
        let mut pm = PositionMap::new(16, 8, 4);
        let mut rng = Rng64::seed_from_u64(1);
        for a in 0..100u64 {
            let e = pm.lookup_or_assign(BlockAddr::new(a), &mut rng);
            assert!(e.label.raw() < 16);
            assert_eq!(e.version, 0);
            assert_eq!(e.site, RealCopySite::Unmapped);
        }
    }

    #[test]
    fn lookup_is_stable_until_remap() {
        let mut pm = PositionMap::new(1024, 8, 4);
        let mut rng = Rng64::seed_from_u64(2);
        let a = BlockAddr::new(7);
        let first = pm.lookup_or_assign(a, &mut rng).label;
        assert_eq!(pm.lookup_or_assign(a, &mut rng).label, first);
        // Remap draws fresh randomness; over many tries it must change.
        let mut changed = false;
        for _ in 0..64 {
            if pm.remap(a, &mut rng) != first {
                changed = true;
                break;
            }
        }
        assert!(changed, "remap never changed the label");
    }

    #[test]
    fn versions_bump_monotonically() {
        let mut pm = PositionMap::new(4, 8, 4);
        let mut rng = Rng64::seed_from_u64(3);
        let a = BlockAddr::new(0);
        pm.lookup_or_assign(a, &mut rng);
        assert!(pm.is_current(a, 0));
        assert_eq!(pm.bump_version(a), 1);
        assert!(!pm.is_current(a, 0));
        assert!(pm.is_current(a, 1));
    }

    #[test]
    fn unseen_addresses_read_as_absent() {
        let mut pm = PositionMap::new(16, 8, 4);
        let mut rng = Rng64::seed_from_u64(7);
        // Touch a high address so lower ones exist as vacant slots.
        pm.lookup_or_assign(BlockAddr::new(50), &mut rng);
        assert_eq!(pm.peek(BlockAddr::new(10)), None);
        assert_eq!(pm.version(BlockAddr::new(10)), 0);
        pm.set_site(BlockAddr::new(10), RealCopySite::Stash); // must be a no-op
        assert_eq!(pm.peek(BlockAddr::new(10)), None);
    }

    #[test]
    fn plb_hits_on_spatial_locality() {
        let mut pm = PositionMap::new(1024, 64, 16);
        let mut rng = Rng64::seed_from_u64(4);
        // 16 consecutive addresses share a PLB page: 1 miss + 15 hits.
        for a in 0..16u64 {
            pm.lookup_or_assign(BlockAddr::new(a), &mut rng);
        }
        assert_eq!(pm.plb_stats().misses, 1);
        assert_eq!(pm.plb_stats().hits, 15);
        assert!(pm.plb_stats().hit_rate() > 0.9);
    }

    #[test]
    fn plb_conflict_misses() {
        let mut pm = PositionMap::new(1024, 2, 1);
        let mut rng = Rng64::seed_from_u64(5);
        // Pages 0 and 2 collide in a 2-set direct-mapped PLB.
        pm.lookup_or_assign(BlockAddr::new(0), &mut rng);
        pm.lookup_or_assign(BlockAddr::new(2), &mut rng);
        pm.lookup_or_assign(BlockAddr::new(0), &mut rng);
        assert_eq!(pm.plb_stats().misses, 3);
    }

    #[test]
    fn site_tracking_round_trip() {
        let mut pm = PositionMap::new(4, 8, 4);
        let mut rng = Rng64::seed_from_u64(6);
        let a = BlockAddr::new(1);
        pm.lookup_or_assign(a, &mut rng);
        pm.set_site(a, RealCopySite::Tree { level: 5 });
        assert_eq!(pm.peek(a).unwrap().site, RealCopySite::Tree { level: 5 });
        pm.set_site(a, RealCopySite::Stash);
        assert_eq!(pm.peek(a).unwrap().site, RealCopySite::Stash);
    }
}

//! Position-map backends and the PosMap Lookup Buffer (PLB).
//!
//! The position map is the trusted lookup table from program address to
//! current leaf label. Real hardware recurses the map into the ORAM itself
//! and fronts it with a PLB (Freecursive ORAM [14]). This module defines
//! the [`PosMapBackend`] abstraction the controller programs against —
//! mirroring the `StorageBackend` seam on the DRAM side — plus the two
//! on-chip implementations:
//!
//! * [`FlatPosMap`] — the original flat `Vec<PosEntry>` indexed by block
//!   address (the paper baseline's "unified program address space"),
//!   byte-identical in behavior to the pre-backend controller;
//! * [`SparseFlatPosMap`] — the same semantics with hash-map storage, so
//!   billion-address domains cost memory proportional to the touched
//!   working set instead of the address space.
//!
//! The recursive posmap-ORAM chain lives in
//! [`crate::posmap_recursive::RecursivePosMap`].
//!
//! Beyond the label, the controller tracks two pieces of trusted metadata
//! per address:
//!
//! * a **version** counter used to invalidate stale copies, and
//! * the **tree level** of the authoritative real copy (`None` while the
//!   live copy sits in the stash), which Rule-2 needs when duplicating a
//!   stash-resident shadow candidate.

use oram_util::{DetHashMap, Rng64, SharedObserver};

use crate::access::PathPhase;
use crate::config::{OramConfig, PosMapSelect};
use crate::tree::TreeShape;
use crate::types::{BlockAddr, LeafLabel, Version};

/// Where the authoritative real copy of an address currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RealCopySite {
    /// Live copy is in the stash (possibly marked replaceable after an
    /// eviction, in which case an identical copy also sits in the tree).
    Stash,
    /// Live copy is in the ORAM tree at the given level on its label path.
    Tree {
        /// Level of the bucket holding the copy (0 = root).
        level: u32,
    },
    /// The address has never been written: reads return the configured
    /// fill value and the first access materializes the block.
    Unmapped,
}

/// One position-map record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PosEntry {
    /// Current leaf label.
    pub label: LeafLabel,
    /// Latest version; any copy with a smaller version is stale.
    pub version: Version,
    /// Where the live real copy is.
    pub site: RealCopySite,
}

/// Label sentinel marking a never-assigned slot in the flat table. Real
/// labels are `< leaf_count`, so the all-ones label can never collide
/// with one.
const UNASSIGNED: LeafLabel = LeafLabel::new(u64::MAX);

const VACANT: PosEntry =
    PosEntry { label: UNASSIGNED, version: 0, site: RealCopySite::Unmapped };

/// Statistics for the PLB model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlbStats {
    /// PLB hits.
    pub hits: u64,
    /// PLB misses.
    pub misses: u64,
    /// Valid entries displaced by a conflicting install.
    pub evictions: u64,
}

impl PlbStats {
    /// Hit rate in `[0, 1]`; `1.0` when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One posmap-ORAM path phase awaiting DRAM costing by the system
/// simulator. The flat backends never produce these; the recursive
/// backend queues one per path phase of every level-ORAM access a PLB
/// miss triggered.
#[derive(Debug, Clone, Copy)]
pub struct PosmapPhase {
    /// The path phase in the level's own tree geometry.
    pub phase: PathPhase,
    /// Raw-bucket-id offset locating this level's tree in the device
    /// address space (posmap trees are laid out past the data tree).
    pub bucket_offset: u64,
    /// Posmap-ORAM level (1 = largest, nearest the data addresses).
    pub level: u16,
}

/// The position-map seam of the ORAM controller.
///
/// Mirrors the `StorageBackend` pattern: the controller holds a
/// `Box<dyn PosMapBackend>` chosen by [`OramConfig::posmap`] and speaks
/// only this interface. The *functional* methods (`lookup_or_assign`,
/// `peek`, `remap_to`, …) must behave identically across backends — a
/// property test fuzzes exactly that — while the *costing* surface
/// (`pending`, `onchip_bytes`) lets the recursive backend expose the
/// posmap-ORAM traffic a PLB miss generated so the engine can charge
/// real DRAM timing for it.
pub trait PosMapBackend: std::fmt::Debug + Send {
    /// Looks up (creating on first touch) the entry for `addr`,
    /// assigning a fresh random label to never-seen addresses using the
    /// controller's `rng` (so label streams are backend-independent).
    /// Also runs the PLB model; on a recursive backend a PLB miss walks
    /// the posmap-ORAM chain and queues the resulting phases.
    fn lookup_or_assign(&mut self, addr: BlockAddr, rng: &mut Rng64) -> PosEntry;

    /// Peeks at the entry without creating it or touching the PLB.
    fn peek(&self, addr: BlockAddr) -> Option<PosEntry>;

    /// Remaps `addr` to the given label. Posmap writes ride the PLB line
    /// the same access's lookup already fetched, so no extra traffic is
    /// modeled.
    ///
    /// # Panics
    ///
    /// Panics if `addr` has never been looked up or `label` is out of
    /// range.
    fn remap_to(&mut self, addr: BlockAddr, label: LeafLabel);

    /// Bumps and returns the version for `addr` (CPU write or shadow
    /// promotion).
    ///
    /// # Panics
    ///
    /// Panics if `addr` has never been looked up.
    fn bump_version(&mut self, addr: BlockAddr) -> Version;

    /// Records where the live real copy of `addr` now resides (no-op
    /// for addresses never looked up).
    fn set_site(&mut self, addr: BlockAddr, site: RealCopySite);

    /// Current version for `addr` (0 if never seen).
    fn version(&self, addr: BlockAddr) -> Version;

    /// Returns `true` if the given copy metadata is current (not stale).
    fn is_current(&self, addr: BlockAddr, version: Version) -> bool {
        self.version(addr) == version
    }

    /// PLB statistics.
    fn plb_stats(&self) -> PlbStats;

    /// Number of leaves (labels are drawn from `0..leaf_count`).
    fn leaf_count(&self) -> u64;

    /// Short identifier for reports ("flat", "sparse", "recursive").
    fn kind(&self) -> &'static str;

    /// Posmap-ORAM phases queued since the last [`Self::clear_pending`]
    /// (empty for flat backends). The engine drains this once per access
    /// and charges DRAM timing for every phase.
    fn pending(&self) -> &[PosmapPhase] {
        &[]
    }

    /// Clears the pending phase queue (capacity retained).
    fn clear_pending(&mut self) {}

    /// Modeled on-chip state in bytes: the terminal map, the PLB, and
    /// any level-ORAM stashes. Flat backends report their whole table —
    /// that is the fiction the recursive backend exists to remove.
    fn onchip_bytes(&self) -> u64;

    /// Depth of the posmap-ORAM chain (0 for flat backends and for
    /// recursive maps whose first level already fits on chip).
    fn chain_levels(&self) -> u16 {
        0
    }

    /// Attaches (or detaches) the bus observer posmap-ORAM bucket
    /// touches are reported to. Flat backends generate no bus traffic.
    fn set_observer(&mut self, _observer: Option<SharedObserver>) {}
}

/// Builds the position-map backend selected by `cfg.posmap` for a data
/// tree of the given shape.
pub fn build_posmap(cfg: &OramConfig, shape: TreeShape) -> Box<dyn PosMapBackend> {
    match cfg.posmap {
        PosMapSelect::Flat => Box::new(FlatPosMap::new(
            shape.leaf_count(),
            cfg.plb_entries,
            cfg.plb_page_addrs,
        )),
        PosMapSelect::Sparse => Box::new(SparseFlatPosMap::new(
            shape.leaf_count(),
            cfg.plb_entries,
            cfg.plb_page_addrs,
        )),
        PosMapSelect::Recursive { onchip_kb } => Box::new(
            crate::posmap_recursive::RecursivePosMap::new(cfg, shape, onchip_kb),
        ),
    }
}

/// Direct-mapped PLB over position-map *pages*; each page covers
/// `page_addrs` consecutive block addresses. Shared by the two flat
/// backends (the recursive backend tags entries by chain level and has
/// its own install logic).
#[derive(Debug, Clone)]
struct DirectPlb {
    sets: Vec<Option<u64>>,
    page_addrs: u64,
    stats: PlbStats,
}

impl DirectPlb {
    fn new(entries: usize, page_addrs: u64) -> Self {
        assert!(entries > 0 && page_addrs > 0);
        DirectPlb { sets: vec![None; entries], page_addrs, stats: PlbStats::default() }
    }

    /// Direct-mapped access for the page containing `addr`.
    fn touch(&mut self, addr: BlockAddr) {
        let page = addr.raw() / self.page_addrs;
        let set = (page % self.sets.len() as u64) as usize;
        match self.sets[set] {
            Some(p) if p == page => self.stats.hits += 1,
            other => {
                self.stats.misses += 1;
                if other.is_some() {
                    self.stats.evictions += 1;
                }
                self.sets[set] = Some(page);
            }
        }
    }
}

/// The flat position map with its PLB front.
///
/// Storage is a flat `Vec<PosEntry>` indexed by block address — program
/// addresses are dense small integers here, exactly the layout real
/// position-map hardware assumes — so the per-access lookup is one bounds
/// check and one indexed load instead of a `HashMap` probe, and it stops
/// allocating once the working set has been touched.
#[derive(Debug, Clone)]
pub struct FlatPosMap {
    leaf_count: u64,
    /// Flat table indexed by raw block address; [`UNASSIGNED`] labels
    /// mark never-touched addresses. Grows geometrically on first touch
    /// of a new high-water address and never shrinks, so steady-state
    /// lookups are allocation-free.
    entries: Vec<PosEntry>,
    plb: DirectPlb,
}

/// Backward-compatible name: the flat map was the only position map
/// before the backend seam existed.
pub type PositionMap = FlatPosMap;

impl FlatPosMap {
    /// Creates a position map for a tree with `leaf_count` leaves and a
    /// PLB of `plb_entries` page entries, each covering `plb_page_addrs`
    /// consecutive addresses (64 KB PLB with 64 B lines over 4 B entries →
    /// 1024 entries × 16 addresses in the paper's configuration).
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(leaf_count: u64, plb_entries: usize, plb_page_addrs: u64) -> Self {
        assert!(leaf_count > 0);
        FlatPosMap {
            leaf_count,
            entries: Vec::new(),
            plb: DirectPlb::new(plb_entries, plb_page_addrs),
        }
    }

    /// Number of leaves (labels are drawn from `0..leaf_count`).
    pub fn leaf_count(&self) -> u64 {
        self.leaf_count
    }

    /// PLB statistics.
    pub fn plb_stats(&self) -> PlbStats {
        self.plb.stats
    }

    /// Entry slot for `addr`, growing the flat table if this is a new
    /// high-water address.
    fn slot_mut(&mut self, addr: BlockAddr) -> &mut PosEntry {
        let ix = addr.raw() as usize;
        if ix >= self.entries.len() {
            let new_len = (ix + 1).max(self.entries.len() * 2);
            self.entries.resize(new_len, VACANT);
        }
        &mut self.entries[ix]
    }

    #[inline]
    fn get(&self, addr: BlockAddr) -> Option<&PosEntry> {
        self.entries.get(addr.raw() as usize).filter(|e| e.label != UNASSIGNED)
    }

    /// Looks up (creating on first touch) the entry for `addr`, assigning a
    /// fresh random label to never-seen addresses. Also runs the PLB model.
    pub fn lookup_or_assign(&mut self, addr: BlockAddr, rng: &mut Rng64) -> PosEntry {
        self.plb.touch(addr);
        let leaf_count = self.leaf_count;
        let e = self.slot_mut(addr);
        if e.label == UNASSIGNED {
            e.label = LeafLabel::new(rng.below(leaf_count));
        }
        *e
    }

    /// Peeks at the entry without creating it or touching the PLB.
    #[inline]
    pub fn peek(&self, addr: BlockAddr) -> Option<PosEntry> {
        self.get(addr).copied()
    }

    /// Remaps `addr` to a fresh uniformly random leaf, returning the new
    /// label. The entry must exist.
    ///
    /// # Panics
    ///
    /// Panics if `addr` has never been looked up.
    pub fn remap(&mut self, addr: BlockAddr, rng: &mut Rng64) -> LeafLabel {
        let label = LeafLabel::new(rng.below(self.leaf_count));
        self.remap_to(addr, label);
        label
    }

    /// Remaps `addr` to the given label (the controller draws the random
    /// label itself so that its RNG consumption is policy-independent).
    ///
    /// # Panics
    ///
    /// Panics if `addr` has never been looked up or `label` is out of
    /// range.
    pub fn remap_to(&mut self, addr: BlockAddr, label: LeafLabel) {
        assert!(label.raw() < self.leaf_count, "label out of range");
        let e = self.slot_mut(addr);
        assert!(e.label != UNASSIGNED, "remap of unknown address");
        e.label = label;
    }

    /// Bumps and returns the version for `addr` (CPU write or shadow
    /// promotion). The entry must exist.
    ///
    /// # Panics
    ///
    /// Panics if `addr` has never been looked up.
    pub fn bump_version(&mut self, addr: BlockAddr) -> Version {
        let e = self.slot_mut(addr);
        assert!(e.label != UNASSIGNED, "version bump of unknown address");
        e.version += 1;
        e.version
    }

    /// Records where the live real copy of `addr` now resides (no-op for
    /// addresses never looked up).
    pub fn set_site(&mut self, addr: BlockAddr, site: RealCopySite) {
        if let Some(e) = self
            .entries
            .get_mut(addr.raw() as usize)
            .filter(|e| e.label != UNASSIGNED)
        {
            e.site = site;
        }
    }

    /// Current version for `addr` (0 if never seen).
    #[inline]
    pub fn version(&self, addr: BlockAddr) -> Version {
        self.get(addr).map_or(0, |e| e.version)
    }

    /// Returns `true` if the given copy metadata is current (not stale).
    #[inline]
    pub fn is_current(&self, addr: BlockAddr, version: Version) -> bool {
        self.version(addr) == version
    }
}

impl PosMapBackend for FlatPosMap {
    fn lookup_or_assign(&mut self, addr: BlockAddr, rng: &mut Rng64) -> PosEntry {
        FlatPosMap::lookup_or_assign(self, addr, rng)
    }

    fn peek(&self, addr: BlockAddr) -> Option<PosEntry> {
        FlatPosMap::peek(self, addr)
    }

    fn remap_to(&mut self, addr: BlockAddr, label: LeafLabel) {
        FlatPosMap::remap_to(self, addr, label)
    }

    fn bump_version(&mut self, addr: BlockAddr) -> Version {
        FlatPosMap::bump_version(self, addr)
    }

    fn set_site(&mut self, addr: BlockAddr, site: RealCopySite) {
        FlatPosMap::set_site(self, addr, site)
    }

    fn version(&self, addr: BlockAddr) -> Version {
        FlatPosMap::version(self, addr)
    }

    fn is_current(&self, addr: BlockAddr, version: Version) -> bool {
        FlatPosMap::is_current(self, addr, version)
    }

    fn plb_stats(&self) -> PlbStats {
        FlatPosMap::plb_stats(self)
    }

    fn leaf_count(&self) -> u64 {
        self.leaf_count
    }

    fn kind(&self) -> &'static str {
        "flat"
    }

    fn onchip_bytes(&self) -> u64 {
        // The whole table is (fictionally) on chip, plus the PLB tags.
        self.entries.capacity() as u64 * std::mem::size_of::<PosEntry>() as u64
            + self.plb.sets.len() as u64 * 16
    }
}

/// Flat-map semantics over sparse hash-map storage.
///
/// Behaviorally identical to [`FlatPosMap`] — a never-inserted key plays
/// the role of the [`UNASSIGNED`] sentinel — but memory scales with the
/// touched working set, which makes it usable both for huge address
/// domains and as the internal map of recursive posmap-ORAM level
/// controllers (whose state conceptually lives in the *next* level).
#[derive(Debug, Clone)]
pub struct SparseFlatPosMap {
    leaf_count: u64,
    entries: DetHashMap<u64, PosEntry>,
    plb: DirectPlb,
}

impl SparseFlatPosMap {
    /// Creates a sparse position map; arguments as [`FlatPosMap::new`].
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(leaf_count: u64, plb_entries: usize, plb_page_addrs: u64) -> Self {
        assert!(leaf_count > 0);
        SparseFlatPosMap {
            leaf_count,
            entries: DetHashMap::default(),
            plb: DirectPlb::new(plb_entries, plb_page_addrs),
        }
    }
}

impl PosMapBackend for SparseFlatPosMap {
    fn lookup_or_assign(&mut self, addr: BlockAddr, rng: &mut Rng64) -> PosEntry {
        self.plb.touch(addr);
        let leaf_count = self.leaf_count;
        *self.entries.entry(addr.raw()).or_insert_with(|| PosEntry {
            label: LeafLabel::new(rng.below(leaf_count)),
            version: 0,
            site: RealCopySite::Unmapped,
        })
    }

    fn peek(&self, addr: BlockAddr) -> Option<PosEntry> {
        self.entries.get(&addr.raw()).copied()
    }

    fn remap_to(&mut self, addr: BlockAddr, label: LeafLabel) {
        assert!(label.raw() < self.leaf_count, "label out of range");
        let e = self.entries.get_mut(&addr.raw()).expect("remap of unknown address");
        e.label = label;
    }

    fn bump_version(&mut self, addr: BlockAddr) -> Version {
        let e = self
            .entries
            .get_mut(&addr.raw())
            .expect("version bump of unknown address");
        e.version += 1;
        e.version
    }

    fn set_site(&mut self, addr: BlockAddr, site: RealCopySite) {
        if let Some(e) = self.entries.get_mut(&addr.raw()) {
            e.site = site;
        }
    }

    fn version(&self, addr: BlockAddr) -> Version {
        self.entries.get(&addr.raw()).map_or(0, |e| e.version)
    }

    fn plb_stats(&self) -> PlbStats {
        self.plb.stats
    }

    fn leaf_count(&self) -> u64 {
        self.leaf_count
    }

    fn kind(&self) -> &'static str {
        "sparse"
    }

    fn onchip_bytes(&self) -> u64 {
        self.entries.len() as u64 * (std::mem::size_of::<PosEntry>() as u64 + 8)
            + self.plb.sets.len() as u64 * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assigns_labels_in_range() {
        let mut pm = PositionMap::new(16, 8, 4);
        let mut rng = Rng64::seed_from_u64(1);
        for a in 0..100u64 {
            let e = pm.lookup_or_assign(BlockAddr::new(a), &mut rng);
            assert!(e.label.raw() < 16);
            assert_eq!(e.version, 0);
            assert_eq!(e.site, RealCopySite::Unmapped);
        }
    }

    #[test]
    fn lookup_is_stable_until_remap() {
        let mut pm = PositionMap::new(1024, 8, 4);
        let mut rng = Rng64::seed_from_u64(2);
        let a = BlockAddr::new(7);
        let first = pm.lookup_or_assign(a, &mut rng).label;
        assert_eq!(pm.lookup_or_assign(a, &mut rng).label, first);
        // Remap draws fresh randomness; over many tries it must change.
        let mut changed = false;
        for _ in 0..64 {
            if pm.remap(a, &mut rng) != first {
                changed = true;
                break;
            }
        }
        assert!(changed, "remap never changed the label");
    }

    #[test]
    fn versions_bump_monotonically() {
        let mut pm = PositionMap::new(4, 8, 4);
        let mut rng = Rng64::seed_from_u64(3);
        let a = BlockAddr::new(0);
        pm.lookup_or_assign(a, &mut rng);
        assert!(pm.is_current(a, 0));
        assert_eq!(pm.bump_version(a), 1);
        assert!(!pm.is_current(a, 0));
        assert!(pm.is_current(a, 1));
    }

    #[test]
    fn unseen_addresses_read_as_absent() {
        let mut pm = PositionMap::new(16, 8, 4);
        let mut rng = Rng64::seed_from_u64(7);
        // Touch a high address so lower ones exist as vacant slots.
        pm.lookup_or_assign(BlockAddr::new(50), &mut rng);
        assert_eq!(pm.peek(BlockAddr::new(10)), None);
        assert_eq!(pm.version(BlockAddr::new(10)), 0);
        pm.set_site(BlockAddr::new(10), RealCopySite::Stash); // must be a no-op
        assert_eq!(pm.peek(BlockAddr::new(10)), None);
    }

    #[test]
    fn plb_hits_on_spatial_locality() {
        let mut pm = PositionMap::new(1024, 64, 16);
        let mut rng = Rng64::seed_from_u64(4);
        // 16 consecutive addresses share a PLB page: 1 miss + 15 hits.
        for a in 0..16u64 {
            pm.lookup_or_assign(BlockAddr::new(a), &mut rng);
        }
        assert_eq!(pm.plb_stats().misses, 1);
        assert_eq!(pm.plb_stats().hits, 15);
        assert!(pm.plb_stats().hit_rate() > 0.9);
    }

    #[test]
    fn plb_conflict_misses() {
        let mut pm = PositionMap::new(1024, 2, 1);
        let mut rng = Rng64::seed_from_u64(5);
        // Pages 0 and 2 collide in a 2-set direct-mapped PLB.
        pm.lookup_or_assign(BlockAddr::new(0), &mut rng);
        pm.lookup_or_assign(BlockAddr::new(2), &mut rng);
        pm.lookup_or_assign(BlockAddr::new(0), &mut rng);
        assert_eq!(pm.plb_stats().misses, 3);
        // The second and third misses each displaced a valid tag.
        assert_eq!(pm.plb_stats().evictions, 2);
    }

    #[test]
    fn site_tracking_round_trip() {
        let mut pm = PositionMap::new(4, 8, 4);
        let mut rng = Rng64::seed_from_u64(6);
        let a = BlockAddr::new(1);
        pm.lookup_or_assign(a, &mut rng);
        pm.set_site(a, RealCopySite::Tree { level: 5 });
        assert_eq!(pm.peek(a).unwrap().site, RealCopySite::Tree { level: 5 });
        pm.set_site(a, RealCopySite::Stash);
        assert_eq!(pm.peek(a).unwrap().site, RealCopySite::Stash);
    }

    /// The sparse backend must be observationally identical to the flat
    /// one under the trait interface (a larger seeded fuzz of the same
    /// property, recursive included, lives in `tests/properties.rs`).
    #[test]
    fn sparse_matches_flat_semantics() {
        let mut flat = FlatPosMap::new(64, 8, 4);
        let mut sparse = SparseFlatPosMap::new(64, 8, 4);
        let mut r1 = Rng64::seed_from_u64(9);
        let mut r2 = Rng64::seed_from_u64(9);
        let mut drive = Rng64::seed_from_u64(10);
        for _ in 0..2000 {
            let a = BlockAddr::new(drive.below(96));
            match drive.below(5) {
                0 => assert_eq!(
                    PosMapBackend::lookup_or_assign(&mut flat, a, &mut r1),
                    PosMapBackend::lookup_or_assign(&mut sparse, a, &mut r2),
                ),
                1 => assert_eq!(
                    PosMapBackend::peek(&flat, a),
                    PosMapBackend::peek(&sparse, a)
                ),
                2 => {
                    if PosMapBackend::peek(&flat, a).is_some() {
                        let l = LeafLabel::new(drive.below(64));
                        PosMapBackend::remap_to(&mut flat, a, l);
                        PosMapBackend::remap_to(&mut sparse, a, l);
                    }
                }
                3 => {
                    if PosMapBackend::peek(&flat, a).is_some() {
                        assert_eq!(
                            PosMapBackend::bump_version(&mut flat, a),
                            PosMapBackend::bump_version(&mut sparse, a)
                        );
                    }
                }
                _ => {
                    PosMapBackend::set_site(&mut flat, a, RealCopySite::Stash);
                    PosMapBackend::set_site(&mut sparse, a, RealCopySite::Stash);
                }
            }
            assert_eq!(
                PosMapBackend::version(&flat, a),
                PosMapBackend::version(&sparse, a)
            );
        }
        assert_eq!(flat.plb_stats(), PosMapBackend::plb_stats(&sparse));
    }
}

//! The on-chip stash: a small content-addressable memory that temporarily
//! holds data blocks between path reads and path writes.
//!
//! The stash follows the paper's hardware design (Sec. V-A):
//!
//! * every entry carries an *evicted bit* marking it **replaceable** — its
//!   slot counts as free for incoming blocks;
//! * shadow blocks are *always* replaceable the moment they are inserted
//!   (Rule-3), so duplication can never worsen stash occupancy;
//! * merge operations collapse multiple copies of the same address: the
//!   real copy wins over shadows, newer versions win over older ones.

use oram_util::FixedAddrMap;

use crate::tree::TreeShape;
use crate::types::{Block, BlockAddr, LeafLabel, Version};

/// One stash entry: a decrypted block plus the evicted/replaceable bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StashEntry {
    /// The block held in this slot.
    pub block: Block,
    /// When set, this slot counts as free: its data also lives in the ORAM
    /// tree (an evicted real block or any shadow block) and may be
    /// overwritten by incoming blocks at any time.
    pub replaceable: bool,
}

/// Outcome of inserting a block into the stash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Stored in a previously empty slot.
    Stored,
    /// Stored by overwriting a replaceable entry (whose address is given).
    ReplacedVictim(BlockAddr),
    /// Merged with an existing entry for the same address; the incoming
    /// copy was discarded as stale or redundant.
    MergedDiscardedIncoming,
    /// Merged with an existing entry for the same address; the incoming
    /// copy superseded the resident one (e.g. real over shadow).
    MergedUpgraded,
    /// The incoming block was a shadow and no slot was free; shadows are
    /// droppable, so it was silently discarded (never an overflow).
    ShadowDropped,
    /// A real block arrived with no free slot: stash overflow. The caller
    /// decides policy; the block was **not** stored.
    Overflow,
}

/// Running statistics for the stash.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StashStats {
    /// Lookups that found a usable entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Lookups that hit a shadow (or evicted-real) entry specifically.
    pub replaceable_hits: u64,
    /// Real-block inserts that found no free slot.
    pub overflows: u64,
    /// Shadow inserts dropped for lack of space.
    pub shadows_dropped: u64,
    /// High-water mark of live (non-replaceable) entries.
    pub max_live: usize,
    /// High-water mark of occupied slots (live + replaceable).
    pub max_occupied: usize,
}

/// The stash itself.
///
/// ```
/// use oram_protocol::{Stash, Block, BlockAddr, LeafLabel};
/// let mut stash = Stash::new(8);
/// let blk = Block::real(BlockAddr::new(3), LeafLabel::new(0), 7, 1);
/// stash.insert(blk);
/// assert_eq!(stash.lookup(BlockAddr::new(3)).map(|e| e.block.data), Some(7));
/// ```
#[derive(Debug, Clone)]
pub struct Stash {
    capacity: usize,
    slots: Vec<Option<StashEntry>>,
    /// CAM index: program address → slot. A fixed-capacity
    /// open-addressed table, so probes are two cache lines at worst and
    /// the stash never allocates after construction.
    index: FixedAddrMap,
    free: Vec<usize>,
    /// Live (non-replaceable) entry count, maintained incrementally so
    /// the high-water bookkeeping is O(1) per insert instead of a scan.
    live_count: usize,
    stats: StashStats,
}

impl Stash {
    /// Creates a stash with room for `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "stash capacity must be positive");
        Stash {
            capacity,
            slots: vec![None; capacity],
            index: FixedAddrMap::with_capacity(capacity),
            free: (0..capacity).rev().collect(),
            live_count: 0,
            stats: StashStats::default(),
        }
    }

    /// Total slot capacity `M`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of occupied slots (live + replaceable).
    pub fn occupied(&self) -> usize {
        self.capacity - self.free.len()
    }

    /// Number of live (non-replaceable) entries — the quantity that matters
    /// for stash-overflow analysis.
    pub fn live(&self) -> usize {
        debug_assert_eq!(
            self.live_count,
            self.slots.iter().flatten().filter(|e| !e.replaceable).count()
        );
        self.live_count
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> StashStats {
        self.stats
    }

    /// Raw CAM probe by program address: returns the physical entry even
    /// when it is a freed (evicted-real) slot. Used by the merge logic;
    /// for request servicing use [`Stash::lookup`] / [`Stash::serving`].
    pub fn peek(&self, addr: BlockAddr) -> Option<&StashEntry> {
        self.index.get(addr.raw()).and_then(|i| self.slots[i as usize].as_ref())
    }

    /// The entry that would *serve* a request for `addr`, if any.
    ///
    /// Evicted real blocks are logically freed slots ("their corresponding
    /// positions in the stash become free slots", Sec. II-C): although
    /// their bits linger until overwritten, they do not answer lookups.
    /// Live real blocks always serve; shadow entries serve too — that is
    /// precisely how HD-Dup caches hot data on chip (Sec. IV-C2).
    pub fn serving(&self, addr: BlockAddr) -> Option<&StashEntry> {
        self.peek(addr)
            .filter(|e| !(e.replaceable && e.block.is_real()))
    }

    /// CAM lookup by program address, recording hit/miss statistics.
    /// Applies the [`Stash::serving`] visibility rule.
    pub fn lookup(&mut self, addr: BlockAddr) -> Option<StashEntry> {
        match self.serving(addr).copied() {
            Some(e) => {
                self.stats.hits += 1;
                if e.replaceable {
                    self.stats.replaceable_hits += 1;
                }
                Some(e)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a block loaded from a path read, applying the merge rules.
    ///
    /// Shadow blocks are stored replaceable (Rule-3); real blocks are
    /// stored live. Dummies must be filtered out by the caller.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `block` is a dummy.
    pub fn insert(&mut self, block: Block) -> InsertOutcome {
        debug_assert!(!block.is_dummy(), "dummies never enter the stash");
        let incoming_replaceable = block.is_shadow();

        if let Some(slot) = self.index.get(block.addr.raw()) {
            return self.merge_at(slot as usize, block, incoming_replaceable);
        }

        if let Some(slot) = self.free.pop() {
            self.store(slot, block, incoming_replaceable);
            return InsertOutcome::Stored;
        }

        // No free slot: displace a replaceable victim. Incoming shadows
        // also qualify — replaceable slots are free slots (Rule-3), and a
        // freshly loaded shadow is the mechanism by which HD-Dup caches hot
        // data on chip.
        if let Some((slot, victim_addr)) = self.find_replaceable_victim() {
            self.evict_slot(slot);
            self.free.pop(); // the slot we just freed
            self.store(slot, block, incoming_replaceable);
            return InsertOutcome::ReplacedVictim(victim_addr);
        }

        if block.is_shadow() {
            self.stats.shadows_dropped += 1;
            InsertOutcome::ShadowDropped
        } else {
            self.stats.overflows += 1;
            InsertOutcome::Overflow
        }
    }

    /// Merge an incoming copy with the resident entry at `slot`.
    fn merge_at(&mut self, slot: usize, block: Block, incoming_replaceable: bool) -> InsertOutcome {
        let resident = self.slots[slot].expect("indexed slot must be occupied");
        debug_assert_eq!(resident.block.addr, block.addr);

        let upgrade = match block.version.cmp(&resident.block.version) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => {
                // Same version: the real copy wins over a shadow; otherwise
                // the resident stays (duplicate shadows merge into one,
                // duplicate reals are bit-identical).
                block.is_real() && resident.block.is_shadow()
            }
        };

        if upgrade {
            // A real copy arriving over a shadow keeps the data live; a
            // newer version always re-arms the entry as live if it is real.
            self.note_replaceable_change(resident.replaceable, incoming_replaceable);
            self.slots[slot] = Some(StashEntry { block, replaceable: incoming_replaceable });
            self.touch_high_water();
            InsertOutcome::MergedUpgraded
        } else {
            InsertOutcome::MergedDiscardedIncoming
        }
    }

    fn store(&mut self, slot: usize, block: Block, replaceable: bool) {
        debug_assert!(self.slots[slot].is_none());
        self.slots[slot] = Some(StashEntry { block, replaceable });
        self.index.insert(block.addr.raw(), slot as u32);
        if !replaceable {
            self.live_count += 1;
        }
        self.touch_high_water();
    }

    /// Updates the live counter for a replaceable-bit transition.
    fn note_replaceable_change(&mut self, was: bool, now: bool) {
        match (was, now) {
            (true, false) => self.live_count += 1,
            (false, true) => self.live_count -= 1,
            _ => {}
        }
    }

    fn touch_high_water(&mut self) {
        let occ = self.occupied();
        if occ > self.stats.max_occupied {
            self.stats.max_occupied = occ;
        }
        if self.live_count > self.stats.max_live {
            self.stats.max_live = self.live_count;
        }
    }

    fn find_replaceable_victim(&self) -> Option<(usize, BlockAddr)> {
        // Prefer displacing evicted-real entries: their data lives intact
        // in the tree, while resident shadows double as HD-Dup's on-chip
        // cache and the recirculation supply for future duplication, so
        // shadows are victimized only when no other replaceable exists.
        let mut shadow_victim = None;
        for (i, s) in self.slots.iter().enumerate() {
            if let Some(e) = s {
                if e.replaceable {
                    if e.block.is_shadow() {
                        if shadow_victim.is_none() {
                            shadow_victim = Some((i, e.block.addr));
                        }
                    } else {
                        return Some((i, e.block.addr));
                    }
                }
            }
        }
        shadow_victim
    }

    /// Frees `slot`, removing its index entry.
    fn evict_slot(&mut self, slot: usize) {
        if let Some(e) = self.slots[slot].take() {
            self.index.remove(e.block.addr.raw());
            if !e.replaceable {
                self.live_count -= 1;
            }
            self.free.push(slot);
        }
    }

    /// Removes the entry for `addr` entirely (used when a block is
    /// invalidated rather than evicted).
    pub fn remove(&mut self, addr: BlockAddr) -> Option<Block> {
        let slot = self.index.get(addr.raw())? as usize;
        let e = self.slots[slot].take()?;
        self.index.remove(addr.raw());
        if !e.replaceable {
            self.live_count -= 1;
        }
        self.free.push(slot);
        Some(e.block)
    }

    /// Overwrites the payload of a resident entry (a CPU write hitting the
    /// stash). The entry is promoted to a live real block with the given
    /// version; if it was a shadow or an evicted-real copy, the tree copies
    /// become stale and will be discarded by the version check on load.
    ///
    /// Returns `false` if `addr` is not resident.
    pub fn write(&mut self, addr: BlockAddr, data: u64, version: Version) -> bool {
        let Some(slot) = self.index.get(addr.raw()) else {
            return false;
        };
        let Some(entry) = self.slots[slot as usize].as_mut() else {
            return false;
        };
        entry.block = Block::real(addr, entry.block.label, data, version);
        let was = entry.replaceable;
        entry.replaceable = false;
        self.note_replaceable_change(was, false);
        self.touch_high_water();
        true
    }

    /// Forces the resident entry for `addr` live (non-replaceable). Used by
    /// the eviction read: blocks pulled off a path that is about to be
    /// rewritten must not be victimized before the write half re-places
    /// them. Returns `false` if `addr` is not resident.
    pub fn ensure_live(&mut self, addr: BlockAddr) -> bool {
        let Some(slot) = self.index.get(addr.raw()) else {
            return false;
        };
        let Some(entry) = self.slots[slot as usize].as_mut() else {
            return false;
        };
        if entry.block.is_real() {
            let was = entry.replaceable;
            entry.replaceable = false;
            self.note_replaceable_change(was, false);
            self.touch_high_water();
        }
        true
    }

    /// Re-labels a resident entry (remap after an access) and promotes it to
    /// a live real block. Returns `false` if absent.
    pub fn relabel(&mut self, addr: BlockAddr, label: LeafLabel, version: Version) -> bool {
        let Some(slot) = self.index.get(addr.raw()) else {
            return false;
        };
        let Some(entry) = self.slots[slot as usize].as_mut() else {
            return false;
        };
        entry.block = Block::real(addr, label, entry.block.data, version.max(entry.block.version));
        let was = entry.replaceable;
        entry.replaceable = false;
        self.note_replaceable_change(was, false);
        self.touch_high_water();
        true
    }

    /// Selects the live real block best suited for the bucket at
    /// `slot_level` on the path to `eviction_leaf`: among the eligible
    /// blocks (whose label path passes through that bucket) the one whose
    /// path stays joined with the eviction path deepest — the standard
    /// "as deep as possible" greedy of Path ORAM.
    pub fn select_for_eviction(
        &self,
        shape: &TreeShape,
        eviction_leaf: LeafLabel,
        slot_level: u32,
    ) -> Option<BlockAddr> {
        let mut best: Option<(u32, BlockAddr)> = None;
        for entry in self.slots.iter().flatten() {
            if entry.replaceable || !entry.block.is_real() {
                continue;
            }
            let cl = shape.common_level(eviction_leaf, entry.block.label);
            if cl >= slot_level {
                match best {
                    Some((b, _)) if b >= cl => {}
                    _ => best = Some((cl, entry.block.addr)),
                }
            }
        }
        best.map(|(_, a)| a)
    }

    /// Marks `addr` as evicted (replaceable) after it has been written back
    /// to the tree, returning a copy of the block that was written.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not resident — callers must only evict blocks
    /// selected by [`Stash::select_for_eviction`].
    pub fn mark_evicted(&mut self, addr: BlockAddr) -> Block {
        let slot = self.index.get(addr.raw()).expect("evicted block resident") as usize;
        let entry = self.slots[slot].as_mut().expect("selected entry present");
        let was = entry.replaceable;
        entry.replaceable = true;
        let block = entry.block;
        self.note_replaceable_change(was, true);
        block
    }

    /// Iterates over resident shadow entries (duplication candidates whose
    /// real copy lives in the tree).
    pub fn shadow_entries(&self) -> impl Iterator<Item = &StashEntry> {
        self.slots
            .iter()
            .flatten()
            .filter(|e| e.block.is_shadow())
    }

    /// Iterates over all occupied entries.
    pub fn entries(&self) -> impl Iterator<Item = &StashEntry> {
        self.slots.iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn real(addr: u64, label: u64, data: u64, ver: u64) -> Block {
        Block::real(BlockAddr::new(addr), LeafLabel::new(label), data, ver)
    }

    #[test]
    fn insert_and_lookup() {
        let mut s = Stash::new(4);
        assert_eq!(s.insert(real(1, 0, 10, 1)), InsertOutcome::Stored);
        assert_eq!(s.lookup(BlockAddr::new(1)).unwrap().block.data, 10);
        assert!(s.lookup(BlockAddr::new(2)).is_none());
        assert_eq!(s.stats().hits, 1);
        assert_eq!(s.stats().misses, 1);
    }

    #[test]
    fn shadow_is_replaceable_on_insert() {
        let mut s = Stash::new(4);
        let sh = real(1, 0, 10, 1).to_shadow();
        s.insert(sh);
        let e = s.peek(BlockAddr::new(1)).unwrap();
        assert!(e.replaceable);
        assert!(e.block.is_shadow());
        assert_eq!(s.live(), 0);
    }

    #[test]
    fn real_overwrites_shadow_on_merge() {
        let mut s = Stash::new(4);
        s.insert(real(1, 0, 10, 1).to_shadow());
        assert_eq!(s.insert(real(1, 0, 10, 1)), InsertOutcome::MergedUpgraded);
        let e = s.peek(BlockAddr::new(1)).unwrap();
        assert!(e.block.is_real());
        assert!(!e.replaceable);
    }

    #[test]
    fn stale_copy_is_discarded_on_merge() {
        let mut s = Stash::new(4);
        s.insert(real(1, 0, 20, 5));
        assert_eq!(
            s.insert(real(1, 0, 10, 3)),
            InsertOutcome::MergedDiscardedIncoming
        );
        assert_eq!(s.peek(BlockAddr::new(1)).unwrap().block.data, 20);
    }

    #[test]
    fn newer_version_supersedes() {
        let mut s = Stash::new(4);
        s.insert(real(1, 0, 10, 1).to_shadow());
        assert_eq!(s.insert(real(1, 0, 30, 2)), InsertOutcome::MergedUpgraded);
        assert_eq!(s.peek(BlockAddr::new(1)).unwrap().block.data, 30);
    }

    #[test]
    fn duplicate_shadows_merge_to_one() {
        let mut s = Stash::new(4);
        s.insert(real(1, 0, 10, 1).to_shadow());
        assert_eq!(
            s.insert(real(1, 0, 10, 1).to_shadow()),
            InsertOutcome::MergedDiscardedIncoming
        );
        assert_eq!(s.occupied(), 1);
    }

    #[test]
    fn real_block_displaces_replaceable_victim() {
        let mut s = Stash::new(2);
        s.insert(real(1, 0, 10, 1).to_shadow());
        s.insert(real(2, 0, 20, 1));
        // Stash full: 1 shadow (replaceable) + 1 live.
        let out = s.insert(real(3, 0, 30, 1));
        assert_eq!(out, InsertOutcome::ReplacedVictim(BlockAddr::new(1)));
        assert!(s.peek(BlockAddr::new(1)).is_none());
        assert!(s.peek(BlockAddr::new(3)).is_some());
    }

    #[test]
    fn incoming_shadow_dropped_when_full() {
        let mut s = Stash::new(2);
        s.insert(real(1, 0, 10, 1));
        s.insert(real(2, 0, 20, 1));
        let out = s.insert(real(3, 0, 30, 1).to_shadow());
        assert_eq!(out, InsertOutcome::ShadowDropped);
        assert_eq!(s.stats().shadows_dropped, 1);
        assert_eq!(s.stats().overflows, 0);
    }

    #[test]
    fn real_overflow_when_full_of_live_blocks() {
        let mut s = Stash::new(2);
        s.insert(real(1, 0, 10, 1));
        s.insert(real(2, 0, 20, 1));
        assert_eq!(s.insert(real(3, 0, 30, 1)), InsertOutcome::Overflow);
        assert_eq!(s.stats().overflows, 1);
    }

    #[test]
    fn write_promotes_shadow_to_live_real() {
        let mut s = Stash::new(4);
        s.insert(real(1, 3, 10, 1).to_shadow());
        assert!(s.write(BlockAddr::new(1), 77, 2));
        let e = s.peek(BlockAddr::new(1)).unwrap();
        assert!(e.block.is_real());
        assert!(!e.replaceable);
        assert_eq!(e.block.data, 77);
        assert_eq!(e.block.version, 2);
        assert_eq!(e.block.label.raw(), 3, "label preserved on promote");
    }

    #[test]
    fn eviction_selection_prefers_deepest_fit() {
        let shape = TreeShape::new(3, 2);
        let mut s = Stash::new(8);
        // Eviction to leaf 0 (path 0b000).
        s.insert(real(1, 0b100, 0, 1)); // shares only root
        s.insert(real(2, 0b001, 0, 1)); // shares levels 0..=2
        s.insert(real(3, 0b000, 0, 1)); // shares full path
        let leaf = LeafLabel::new(0);
        // For the leaf-level slot only blk 3 qualifies.
        assert_eq!(
            s.select_for_eviction(&shape, leaf, 3),
            Some(BlockAddr::new(3))
        );
        // At level 1 the deepest-fitting candidate is still blk 3.
        assert_eq!(
            s.select_for_eviction(&shape, leaf, 1),
            Some(BlockAddr::new(3))
        );
        // After evicting blk 3, blk 2 becomes the best at level ≤ 2.
        s.mark_evicted(BlockAddr::new(3));
        assert_eq!(
            s.select_for_eviction(&shape, leaf, 2),
            Some(BlockAddr::new(2))
        );
    }

    #[test]
    fn mark_evicted_keeps_entry_replaceable() {
        let mut s = Stash::new(4);
        s.insert(real(1, 0, 10, 1));
        let b = s.mark_evicted(BlockAddr::new(1));
        assert_eq!(b.data, 10);
        assert!(s.peek(BlockAddr::new(1)).unwrap().replaceable);
        assert_eq!(s.live(), 0);
        assert_eq!(s.occupied(), 1);
    }

    #[test]
    fn high_water_marks_track() {
        let mut s = Stash::new(4);
        s.insert(real(1, 0, 0, 1));
        s.insert(real(2, 0, 0, 1));
        s.mark_evicted(BlockAddr::new(2));
        s.insert(real(3, 0, 0, 1).to_shadow());
        assert_eq!(s.stats().max_live, 2);
        assert_eq!(s.stats().max_occupied, 3);
    }
}

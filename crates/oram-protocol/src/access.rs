//! Result types describing what one ORAM access did, at the granularity
//! the timing simulator needs, plus the externally visible trace used by
//! the security tests.

use serde::{Deserialize, Serialize};

use crate::tree::BucketId;
use crate::types::LeafLabel;

/// Where the requested data became available to the CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServedFrom {
    /// Found in the stash: no memory access needed for the data itself.
    Stash,
    /// Found in the on-chip treetop cache during the path read: available
    /// at on-chip latency as soon as the access starts.
    Treetop,
    /// Returned by the DRAM path read at the given flat block index
    /// (0-based, in DRAM access order root→leaf). Early shadow hits show
    /// up as small indices here — that is the paper's entire effect.
    Dram {
        /// Flat index of the block that served the data.
        block_index: usize,
        /// Total DRAM blocks in this path read (for normalization).
        blocks_in_path: usize,
        /// Whether the serving copy was a shadow block (as opposed to the
        /// authoritative real copy).
        via_shadow: bool,
    },
    /// No copy exists anywhere (first touch of a fresh address): the value
    /// is architecturally zero and is confirmed only when the full path
    /// read completes.
    Fresh {
        /// Total DRAM blocks in this path read.
        blocks_in_path: usize,
    },
}

/// One DRAM-visible phase of an ORAM access.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathPhase {
    /// What this phase is.
    pub kind: PhaseKind,
    /// The leaf whose path is touched.
    pub leaf: LeafLabel,
    /// Buckets touched in DRAM, in access order (root-side first). Buckets
    /// inside the treetop cache are excluded — they cost no DRAM time.
    pub buckets: Vec<BucketId>,
}

/// Kind of a [`PathPhase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Read-only path read serving a (real or dummy) request.
    ReadOnly,
    /// The read half of an eviction.
    EvictionRead,
    /// The write half of an eviction.
    EvictionWrite,
}

/// Complete description of one ORAM access returned to the simulator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessResult {
    /// Where and when the requested data became available.
    pub served: ServedFrom,
    /// The value returned to the LLC (for writes, the value just written).
    pub value: u64,
    /// DRAM phases executed by this access, in order. Empty for pure stash
    /// hits. A read-only access contributes one `ReadOnly` phase; when the
    /// eviction counter fires, an `EvictionRead` + `EvictionWrite` pair is
    /// appended.
    pub phases: Vec<PathPhase>,
}

impl AccessResult {
    /// Total DRAM block transfers implied by this access (reads + writes),
    /// given `z` slots per bucket.
    pub fn dram_blocks(&self, z: usize) -> usize {
        self.phases.iter().map(|p| p.buckets.len() * z).sum()
    }

    /// `true` if the access was served without any DRAM involvement.
    pub fn served_on_chip(&self) -> bool {
        matches!(self.served, ServedFrom::Stash | ServedFrom::Treetop)
    }
}

/// One externally observable event: everything an attacker probing the
/// memory bus can see (which bucket, read or write — contents are
/// ciphertext and indistinguishable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Bucket touched.
    pub bucket: BucketId,
    /// `true` for writes.
    pub is_write: bool,
}

/// Recorder for the externally visible access pattern.
///
/// The security integration tests compare traces between the baseline and
/// shadow-block controllers: they must be *identical* for identical request
/// sequences and seeds, which is precisely the paper's security argument
/// (Sec. IV-B1).
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl TraceRecorder {
    /// Creates a recorder; when `enabled` is `false` all records are
    /// dropped at negligible cost.
    pub fn new(enabled: bool) -> Self {
        TraceRecorder { events: Vec::new(), enabled }
    }

    /// Records one bus event.
    pub fn record(&mut self, bucket: BucketId, is_write: bool) {
        if self.enabled {
            self.events.push(TraceEvent { bucket, is_write });
        }
    }

    /// The recorded event sequence.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Drops all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_block_accounting() {
        let r = AccessResult {
            served: ServedFrom::Stash,
            value: 0,
            phases: vec![
                PathPhase {
                    kind: PhaseKind::ReadOnly,
                    leaf: LeafLabel::new(0),
                    buckets: vec![BucketId::ROOT, BucketId::new(2)],
                },
                PathPhase {
                    kind: PhaseKind::EvictionWrite,
                    leaf: LeafLabel::new(0),
                    buckets: vec![BucketId::new(3)],
                },
            ],
        };
        assert_eq!(r.dram_blocks(4), 12);
        assert!(r.served_on_chip());
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut t = TraceRecorder::new(false);
        t.record(BucketId::ROOT, false);
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_recorder_keeps_order() {
        let mut t = TraceRecorder::new(true);
        t.record(BucketId::ROOT, false);
        t.record(BucketId::new(5), true);
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].bucket, BucketId::ROOT);
        assert!(t.events()[1].is_write);
        t.clear();
        assert!(t.events().is_empty());
    }
}

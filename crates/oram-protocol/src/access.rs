//! Result types describing what one ORAM access did, at the granularity
//! the timing simulator needs, plus the externally visible trace used by
//! the security tests.
//!
//! These types sit on the hottest path in the whole system — one
//! [`AccessResult`] per simulated LLC miss — so they are plain-old-data:
//! a phase stores `(kind, leaf, geometry)` and *derives* its DRAM bucket
//! list on demand instead of materializing a `Vec`, and the phase list is
//! a fixed inline array (an access produces at most three phases). The
//! whole result is `Copy` and never touches the heap.

use crate::tree::{BucketId, PathIter, TreeShape};
use crate::types::LeafLabel;

/// Where the requested data became available to the CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedFrom {
    /// Found in the stash: no memory access needed for the data itself.
    Stash,
    /// Found in the on-chip treetop cache during the path read: available
    /// at on-chip latency as soon as the access starts.
    Treetop,
    /// Returned by the DRAM path read at the given flat block index
    /// (0-based, in DRAM access order root→leaf). Early shadow hits show
    /// up as small indices here — that is the paper's entire effect.
    Dram {
        /// Flat index of the block that served the data.
        block_index: usize,
        /// Total DRAM blocks in this path read (for normalization).
        blocks_in_path: usize,
        /// Whether the serving copy was a shadow block (as opposed to the
        /// authoritative real copy).
        via_shadow: bool,
    },
    /// No copy exists anywhere (first touch of a fresh address): the value
    /// is architecturally zero and is confirmed only when the full path
    /// read completes.
    Fresh {
        /// Total DRAM blocks in this path read.
        blocks_in_path: usize,
    },
}

/// One DRAM-visible phase of an ORAM access.
///
/// The DRAM bucket sequence of every phase kind is fully determined by
/// `(leaf, first DRAM level, tree shape)`: a path phase touches the
/// buckets on the path to `leaf` at levels `first_level..=L`, root-side
/// first (the eviction write half fills leaf-first internally, but the
/// controller issues the DRAM writes root-first to match the read
/// pipeline). Deriving the buckets via [`PathPhase::buckets`] keeps this
/// struct `Copy` and the access path allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathPhase {
    /// What this phase is.
    pub kind: PhaseKind,
    /// The leaf whose path is touched.
    pub leaf: LeafLabel,
    /// First DRAM level (buckets above this sit in the on-chip treetop
    /// cache and cost no DRAM time).
    first_level: u32,
    /// Tree geometry, kept inline so the bucket list can be derived
    /// without consulting the controller.
    shape: TreeShape,
}

impl PathPhase {
    /// Describes a phase touching the path to `leaf` at DRAM levels
    /// `first_level..=shape.levels()`.
    pub fn new(kind: PhaseKind, leaf: LeafLabel, shape: TreeShape, first_level: u32) -> Self {
        PathPhase { kind, leaf, first_level, shape }
    }

    /// Placeholder phase touching no buckets (fills unused slots of a
    /// [`PhaseList`]).
    fn empty() -> Self {
        let shape = TreeShape::new(0, 1);
        PathPhase { kind: PhaseKind::ReadOnly, leaf: LeafLabel::new(0), first_level: 1, shape }
    }

    /// First DRAM level of the phase.
    pub fn first_level(&self) -> u32 {
        self.first_level
    }

    /// Buckets touched in DRAM, in access order (root-side first).
    /// Treetop buckets are excluded.
    #[inline]
    pub fn buckets(&self) -> PathIter {
        self.shape.path_iter_from(self.leaf, self.first_level)
    }

    /// Number of DRAM buckets this phase touches.
    #[inline]
    pub fn bucket_count(&self) -> usize {
        (self.shape.levels() + 1).saturating_sub(self.first_level) as usize
    }
}

/// Kind of a [`PathPhase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// Read-only path read serving a (real or dummy) request.
    ReadOnly,
    /// The read half of an eviction.
    EvictionRead,
    /// The write half of an eviction.
    EvictionWrite,
}

/// Maximum phases one access can produce: a read-only path read plus an
/// eviction read/write pair.
pub const MAX_PHASES: usize = 3;

/// Inline, fixed-capacity list of the phases of one access. Dereferences
/// to `&[PathPhase]`, so call sites index and iterate it like the `Vec`
/// it replaces — without the per-access heap allocation.
#[derive(Debug, Clone, Copy)]
pub struct PhaseList {
    items: [PathPhase; MAX_PHASES],
    len: u8,
}

impl PhaseList {
    /// An empty list.
    pub fn new() -> Self {
        PhaseList { items: [PathPhase::empty(); MAX_PHASES], len: 0 }
    }

    /// Appends a phase.
    ///
    /// # Panics
    ///
    /// Panics if the list already holds [`MAX_PHASES`] phases (an access
    /// never produces more).
    pub fn push(&mut self, phase: PathPhase) {
        assert!((self.len as usize) < MAX_PHASES, "phase list overflow");
        self.items[self.len as usize] = phase;
        self.len += 1;
    }

    /// The phases as a slice.
    pub fn as_slice(&self) -> &[PathPhase] {
        &self.items[..self.len as usize]
    }
}

impl Default for PhaseList {
    fn default() -> Self {
        PhaseList::new()
    }
}

impl std::ops::Deref for PhaseList {
    type Target = [PathPhase];

    fn deref(&self) -> &[PathPhase] {
        self.as_slice()
    }
}

impl PartialEq for PhaseList {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for PhaseList {}

impl<'a> IntoIterator for &'a PhaseList {
    type Item = &'a PathPhase;
    type IntoIter = std::slice::Iter<'a, PathPhase>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Complete description of one ORAM access returned to the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Where and when the requested data became available.
    pub served: ServedFrom,
    /// The value returned to the LLC (for writes, the value just written).
    pub value: u64,
    /// For stash hits: whether the serving resident entry was a
    /// shadow-kind copy (HD-Dup's stash-caching effect). The timing
    /// simulator uses this to credit the hit to duplication; always
    /// `false` when `served` is not [`ServedFrom::Stash`].
    pub stash_hit_shadow: bool,
    /// DRAM phases executed by this access, in order. Empty for pure stash
    /// hits. A read-only access contributes one `ReadOnly` phase; when the
    /// eviction counter fires, an `EvictionRead` + `EvictionWrite` pair is
    /// appended.
    pub phases: PhaseList,
}

impl AccessResult {
    /// Total DRAM block transfers implied by this access (reads + writes),
    /// given `z` slots per bucket.
    pub fn dram_blocks(&self, z: usize) -> usize {
        self.phases.iter().map(|p| p.bucket_count() * z).sum()
    }

    /// `true` if the access was served without any DRAM involvement.
    pub fn served_on_chip(&self) -> bool {
        matches!(self.served, ServedFrom::Stash | ServedFrom::Treetop)
    }
}

/// One externally observable event: everything an attacker probing the
/// memory bus can see (which bucket, read or write — contents are
/// ciphertext and indistinguishable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Bucket touched.
    pub bucket: BucketId,
    /// `true` for writes.
    pub is_write: bool,
}

/// Recorder for the externally visible access pattern.
///
/// The security integration tests compare traces between the baseline and
/// shadow-block controllers: they must be *identical* for identical request
/// sequences and seeds, which is precisely the paper's security argument
/// (Sec. IV-B1).
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl TraceRecorder {
    /// Creates a recorder; when `enabled` is `false` all records are
    /// dropped at negligible cost.
    pub fn new(enabled: bool) -> Self {
        TraceRecorder { events: Vec::new(), enabled }
    }

    /// Records one bus event.
    pub fn record(&mut self, bucket: BucketId, is_write: bool) {
        if self.enabled {
            self.events.push(TraceEvent { bucket, is_write });
        }
    }

    /// The recorded event sequence.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Drops all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_block_accounting() {
        let shape = TreeShape::new(1, 4); // 2 levels: root + leaves
        let mut phases = PhaseList::new();
        // Full path in DRAM: 2 buckets.
        phases.push(PathPhase::new(PhaseKind::ReadOnly, LeafLabel::new(0), shape, 0));
        // Treetop holds the root: 1 DRAM bucket.
        phases.push(PathPhase::new(PhaseKind::EvictionWrite, LeafLabel::new(0), shape, 1));
        let r =
            AccessResult { served: ServedFrom::Stash, value: 0, stash_hit_shadow: false, phases };
        assert_eq!(r.dram_blocks(4), 12);
        assert!(r.served_on_chip());
    }

    #[test]
    fn phase_buckets_derive_the_dram_path() {
        let shape = TreeShape::new(3, 2);
        let leaf = LeafLabel::new(5);
        let full = PathPhase::new(PhaseKind::ReadOnly, leaf, shape, 0);
        assert_eq!(full.bucket_count(), 4);
        let ids: Vec<BucketId> = full.buckets().collect();
        assert_eq!(ids, shape.path(leaf));
        // Skipping a 2-level treetop leaves the two leaf-side buckets.
        let tail = PathPhase::new(PhaseKind::ReadOnly, leaf, shape, 2);
        assert_eq!(tail.bucket_count(), 2);
        let ids: Vec<BucketId> = tail.buckets().collect();
        assert_eq!(ids, shape.path(leaf)[2..]);
        assert!(ids.iter().all(|b| b.level() >= 2));
    }

    #[test]
    fn phase_list_acts_like_a_slice() {
        let shape = TreeShape::new(2, 1);
        let mut l = PhaseList::new();
        assert!(l.is_empty());
        l.push(PathPhase::new(PhaseKind::ReadOnly, LeafLabel::new(1), shape, 0));
        l.push(PathPhase::new(PhaseKind::EvictionRead, LeafLabel::new(2), shape, 1));
        assert_eq!(l.len(), 2);
        assert_eq!(l[0].kind, PhaseKind::ReadOnly);
        assert_eq!(l.iter().count(), 2);
        let copy = l;
        assert_eq!(copy, l);
    }

    #[test]
    #[should_panic(expected = "phase list overflow")]
    fn phase_list_rejects_a_fourth_phase() {
        let shape = TreeShape::new(2, 1);
        let p = PathPhase::new(PhaseKind::ReadOnly, LeafLabel::new(0), shape, 0);
        let mut l = PhaseList::new();
        for _ in 0..4 {
            l.push(p);
        }
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut t = TraceRecorder::new(false);
        t.record(BucketId::ROOT, false);
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_recorder_keeps_order() {
        let mut t = TraceRecorder::new(true);
        t.record(BucketId::ROOT, false);
        t.record(BucketId::new(5), true);
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].bucket, BucketId::ROOT);
        assert!(t.events()[1].is_write);
        t.clear();
        assert!(t.events().is_empty());
    }
}

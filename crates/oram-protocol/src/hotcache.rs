//! Hot Address Cache: the set-associative access-counter cache that drives
//! HD-Dup (paper Sec. V-B1).
//!
//! The cache stores program addresses observed at LLC misses (reads and
//! writes) together with a hit counter. Replacement is Least Frequently
//! Used. HD-Dup consults it to pick the hottest duplication candidate; an
//! address absent from the cache has priority zero.


use crate::types::BlockAddr;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: BlockAddr,
    count: u64,
}

/// Statistics for the Hot Address Cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HotCacheStats {
    /// Observations that incremented an existing line.
    pub hits: u64,
    /// Observations that allocated (or failed to allocate) a line.
    pub misses: u64,
    /// Lines evicted by LFU replacement.
    pub evictions: u64,
}

/// Set-associative, LFU-replaced cache of per-address access counters.
///
/// ```
/// use oram_protocol::{HotAddressCache, BlockAddr};
/// let mut hac = HotAddressCache::new(4, 2);
/// hac.observe(BlockAddr::new(1));
/// hac.observe(BlockAddr::new(1));
/// assert_eq!(hac.priority(BlockAddr::new(1)), 2);
/// assert_eq!(hac.priority(BlockAddr::new(9)), 0);
/// ```
#[derive(Debug, Clone)]
pub struct HotAddressCache {
    sets: Vec<Vec<Option<Line>>>,
    ways: usize,
    stats: HotCacheStats,
}

impl HotAddressCache {
    /// Creates a cache with `sets` sets of `ways` ways. The paper's 1 KB
    /// cache corresponds to roughly 64 sets × 2 ways of 8-byte lines.
    ///
    /// A zero in either dimension builds a *disabled* cache: observations
    /// are ignored and every address has priority zero, which degrades
    /// HD-Dup to an arbitrary (but still valid) candidate choice — the
    /// paper's system without its Hot Address Cache.
    pub fn new(sets: usize, ways: usize) -> Self {
        let sets = if ways == 0 { 0 } else { sets };
        HotAddressCache {
            sets: vec![vec![None; ways]; sets],
            ways,
            stats: HotCacheStats::default(),
        }
    }

    /// `false` when the cache was built with zero sets or ways.
    pub fn is_enabled(&self) -> bool {
        !self.sets.is_empty()
    }

    /// Number of sets.
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> HotCacheStats {
        self.stats
    }

    fn set_index(&self, addr: BlockAddr) -> usize {
        (addr.raw() % self.sets.len() as u64) as usize
    }

    /// Records one LLC-miss observation of `addr`, incrementing its counter
    /// (allocating a line via LFU replacement if absent). A no-op when
    /// the cache is disabled.
    pub fn observe(&mut self, addr: BlockAddr) {
        if self.sets.is_empty() {
            return;
        }
        let set = self.set_index(addr);
        let lines = &mut self.sets[set];

        if let Some(line) = lines.iter_mut().flatten().find(|l| l.tag == addr) {
            line.count += 1;
            self.stats.hits += 1;
            return;
        }
        self.stats.misses += 1;

        if let Some(slot) = lines.iter_mut().find(|l| l.is_none()) {
            *slot = Some(Line { tag: addr, count: 1 });
            return;
        }

        // LFU: evict the line with the smallest counter; a new line starts
        // at 1 so a single-touch newcomer cannot immediately displace a
        // genuinely hot line with count > 1.
        let victim = lines
            .iter_mut()
            .min_by_key(|l| l.as_ref().map_or(0, |x| x.count))
            .expect("ways > 0");
        if victim.as_ref().map_or(0, |x| x.count) <= 1 {
            *victim = Some(Line { tag: addr, count: 1 });
            self.stats.evictions += 1;
        }
        // Otherwise the newcomer is not allocated — classic LFU insertion
        // filter that keeps thrash streams from flushing the hot set.
    }

    /// Duplication priority of `addr`: its access counter, or zero when
    /// the address is not cached (paper Sec. IV-C2) or the cache is
    /// disabled.
    pub fn priority(&self, addr: BlockAddr) -> u64 {
        if self.sets.is_empty() {
            return 0;
        }
        let set = self.set_index(addr);
        self.sets[set]
            .iter()
            .flatten()
            .find(|l| l.tag == addr)
            .map_or(0, |l| l.count)
    }

    /// Clears all lines and statistics.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.fill(None);
        }
        self.stats = HotCacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let mut c = HotAddressCache::new(8, 2);
        for _ in 0..5 {
            c.observe(BlockAddr::new(3));
        }
        assert_eq!(c.priority(BlockAddr::new(3)), 5);
        assert_eq!(c.stats().hits, 4);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn absent_address_has_zero_priority() {
        let c = HotAddressCache::new(8, 2);
        assert_eq!(c.priority(BlockAddr::new(42)), 0);
    }

    #[test]
    fn lfu_protects_hot_lines() {
        // One set, one way: addr 1 becomes hot, then a cold stream passes.
        let mut c = HotAddressCache::new(1, 1);
        for _ in 0..10 {
            c.observe(BlockAddr::new(1));
        }
        for a in 2..20u64 {
            c.observe(BlockAddr::new(a));
        }
        assert_eq!(c.priority(BlockAddr::new(1)), 10, "hot line survived");
    }

    #[test]
    fn single_touch_lines_are_replaceable() {
        let mut c = HotAddressCache::new(1, 1);
        c.observe(BlockAddr::new(1)); // count 1
        c.observe(BlockAddr::new(2)); // displaces count-1 line
        assert_eq!(c.priority(BlockAddr::new(1)), 0);
        assert_eq!(c.priority(BlockAddr::new(2)), 1);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn sets_isolate_addresses() {
        let mut c = HotAddressCache::new(2, 1);
        c.observe(BlockAddr::new(0)); // set 0
        c.observe(BlockAddr::new(1)); // set 1
        assert_eq!(c.priority(BlockAddr::new(0)), 1);
        assert_eq!(c.priority(BlockAddr::new(1)), 1);
    }

    #[test]
    fn capacity_pressure_evicts_only_replaceable_lines() {
        // One set under heavy pressure: two genuinely hot lines and a
        // stream of cold aliases fighting for 2 ways.
        let mut c = HotAddressCache::new(1, 2);
        for _ in 0..6 {
            c.observe(BlockAddr::new(1));
            c.observe(BlockAddr::new(2));
        }
        let evictions_before = c.stats().evictions;
        for a in 100..130u64 {
            c.observe(BlockAddr::new(a));
        }
        // The insertion filter refuses to displace count>1 lines, so the
        // hot pair survives the flood and nothing was evicted.
        assert_eq!(c.priority(BlockAddr::new(1)), 6);
        assert_eq!(c.priority(BlockAddr::new(2)), 6);
        assert_eq!(c.stats().evictions, evictions_before);
        // Once a hot line cools relative to a newcomer's first touch,
        // pressure does displace it: rebuild with a count-1 resident.
        let mut c = HotAddressCache::new(1, 1);
        c.observe(BlockAddr::new(7));
        c.observe(BlockAddr::new(8));
        assert_eq!(c.priority(BlockAddr::new(7)), 0);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn aliased_addresses_are_tracked_independently() {
        // addr and addr + sets land in the same set; counters must not
        // bleed between them.
        let sets = 4u64;
        let mut c = HotAddressCache::new(sets as usize, 2);
        for _ in 0..3 {
            c.observe(BlockAddr::new(5));
        }
        c.observe(BlockAddr::new(5 + sets));
        assert_eq!(c.priority(BlockAddr::new(5)), 3);
        assert_eq!(c.priority(BlockAddr::new(5 + sets)), 1);
    }

    #[test]
    fn disabled_cache_is_inert() {
        for (sets, ways) in [(0usize, 2usize), (16, 0), (0, 0)] {
            let mut c = HotAddressCache::new(sets, ways);
            assert!(!c.is_enabled());
            c.observe(BlockAddr::new(1));
            c.observe(BlockAddr::new(1));
            assert_eq!(c.priority(BlockAddr::new(1)), 0);
            assert_eq!(c.stats(), HotCacheStats::default());
            c.reset();
            assert_eq!(c.set_count(), 0);
        }
        assert!(HotAddressCache::new(4, 2).is_enabled());
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = HotAddressCache::new(4, 2);
        c.observe(BlockAddr::new(9));
        c.reset();
        assert_eq!(c.priority(BlockAddr::new(9)), 0);
        assert_eq!(c.stats(), HotCacheStats::default());
    }
}

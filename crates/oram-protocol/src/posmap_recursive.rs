//! Recursive position map: the posmap stored in a chain of smaller
//! ORAMs, fronted by the PLB (Path ORAM recursion + Freecursive-style
//! caching).
//!
//! ## Geometry
//!
//! Position-map entries for the data ORAM are packed into *posmap
//! blocks*: a level-1 block covers one PLB page (`plb_page_addrs`
//! consecutive data addresses — the PLB caches exactly these blocks, as
//! in Freecursive ORAM). Level ℓ+1 stores the leaf labels of level-ℓ
//! posmap blocks, packed [`ENTRIES_PER_BLOCK`] per block, so the block
//! count shrinks geometrically:
//!
//! ```text
//! count₁ = ⌈domain / plb_page_addrs⌉,   countₗ = ⌈count₁ / Eˡ⁻¹⌉
//! ```
//!
//! The chain terminates at the first level whose map fits the
//! configured on-chip budget; that terminal map stays on chip (like a
//! Path ORAM root posmap) and only levels below it become real ORAMs —
//! each a full [`OramController`] with its own tree, stash, eviction
//! schedule and RNG.
//!
//! ## Access protocol
//!
//! A lookup first probes the PLB for the level-1 block. A hit
//! short-circuits everything: the leaf label is on chip, no bus
//! traffic. A miss walks *down* the chain from the deepest level whose
//! block is PLB-resident (the terminal map is always "resident"):
//! each step issues one real read access to that level's ORAM, whose
//! path phases are queued on [`PosMapBackend::pending`] for the engine
//! to cost through the same DRAM/timing model as data accesses, and
//! whose bucket touches surface as [`BusEvent::PosmapBucket`] events so
//! the audit layer can check the posmap traffic itself is oblivious.
//!
//! ## Modeling shortcut (documented on purpose)
//!
//! The *functional* address→entry mapping is kept in one deterministic
//! hash map rather than being bit-packed into the level ORAM payloads:
//! the level controllers already reproduce the *access pattern* and
//! *timing* of the recursion exactly (their own posmaps stand in for
//! "state stored at the next level"), and the data labels the
//! controller sees must be backend-independent for the equivalence
//! property tests to hold. Only the terminal map, the PLB and the level
//! stashes are counted as modeled on-chip state.

use oram_util::{BusEvent, DetHashMap, Rng64, SharedObserver};

use crate::access::PhaseKind;
use crate::config::{OramConfig, PosMapSelect};
use crate::controller::OramController;
use crate::posmap::{PlbStats, PosEntry, PosMapBackend, PosmapPhase, RealCopySite};
use crate::shadow::DupPolicy;
use crate::tree::TreeShape;
use crate::types::{BlockAddr, LeafLabel, Request, Version};

/// Leaf labels of lower-level posmap blocks packed per upper-level
/// posmap block (64 B block / 8 B label + header slack → 32 had the
/// map been bit-packed; fixed so the chain depth is config-independent).
pub const ENTRIES_PER_BLOCK: u64 = 32;

/// One ORAM level of the recursion.
#[derive(Debug)]
struct PosmapLevel {
    /// A full ORAM controller storing this level's posmap blocks.
    ctl: OramController,
    /// Raw-bucket-id offset mapping this level's tree past the data
    /// tree (and past shallower levels) in the device address space.
    bucket_offset: u64,
    /// Number of posmap blocks stored at this level.
    count: u64,
}

/// The recursive position map (see the module docs).
#[derive(Debug)]
pub struct RecursivePosMap {
    /// Data-ORAM leaf count: the label range of the entries served.
    leaf_count: u64,
    /// Functional address→entry state (see the modeling-shortcut note).
    entries: DetHashMap<u64, PosEntry>,
    /// Direct-mapped PLB over `(level, block)` tags.
    plb_sets: Vec<Option<(u16, u64)>>,
    plb_page_addrs: u64,
    plb_stats: PlbStats,
    /// ORAM levels 1..=K, largest (nearest the data) first. Empty when
    /// the level-1 map already fits on chip — the map degenerates to a
    /// flat-plus-PLB model with zero posmap traffic.
    levels: Vec<PosmapLevel>,
    /// Blocks covered by the terminal on-chip map.
    top_count: u64,
    /// Path phases produced by PLB-miss walks since the last clear.
    pending: Vec<PosmapPhase>,
    /// Observer receiving `PosmapBucket` events for walk traffic.
    observer: Option<SharedObserver>,
}

impl RecursivePosMap {
    /// Builds the recursion for a data tree of `shape`, taking the PLB
    /// geometry, block parameters and seed from `cfg` and sizing the
    /// chain so the terminal map fits `onchip_kb` KiB at 8 B per label.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.plb_entries`, `cfg.plb_page_addrs` or `onchip_kb`
    /// is zero.
    pub fn new(cfg: &OramConfig, shape: TreeShape, onchip_kb: u32) -> Self {
        assert!(cfg.plb_entries > 0 && cfg.plb_page_addrs > 0 && onchip_kb > 0);
        let budget_bytes = onchip_kb as u64 * 1024;
        // Address domain the map must cover: the data tree's block
        // capacity (callers address `0..domain`; the flat map makes the
        // same assumption when it sizes itself by high-water address).
        let domain = shape.slot_count().max(1);
        let mut counts = Vec::new();
        let mut c = domain.div_ceil(cfg.plb_page_addrs);
        while c * 8 > budget_bytes {
            counts.push(c);
            c = c.div_ceil(ENTRIES_PER_BLOCK);
        }
        let top_count = c;

        // Build one real ORAM per off-chip level, laid out back-to-back
        // past the data tree in raw-bucket-id space.
        let mut levels = Vec::with_capacity(counts.len());
        let mut offset = shape.bucket_count();
        for (i, &count) in counts.iter().enumerate() {
            let tree_levels = tree_levels_for(count);
            let level_cfg = OramConfig {
                levels: tree_levels,
                z: cfg.z,
                eviction_rate: cfg.eviction_rate,
                stash_capacity: cfg.z * (tree_levels as usize + 1) + 192,
                dup_policy: DupPolicy::Off,
                treetop_levels: 0,
                plb_entries: 1,
                plb_page_addrs: 1,
                hot_cache_sets: 0,
                hot_cache_ways: 2,
                // Decorrelated from the data controller's stream and
                // from sibling levels.
                seed: cfg.seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                record_trace: false,
                recirculate_stash_shadows: true,
                chain_duplication: true,
                // The level's own posmap stands in for state stored at
                // the next level up the chain; sparse so deep chains
                // don't allocate by address space.
                posmap: PosMapSelect::Sparse,
            };
            let ctl = OramController::new(level_cfg)
                .expect("posmap level config is internally generated and valid");
            let bucket_count = ctl.shape().bucket_count();
            levels.push(PosmapLevel { ctl, bucket_offset: offset, count });
            offset += bucket_count;
        }

        let walk_capacity = levels.len() * 3 + 4;
        RecursivePosMap {
            leaf_count: shape.leaf_count(),
            entries: DetHashMap::default(),
            plb_sets: vec![None; cfg.plb_entries],
            plb_page_addrs: cfg.plb_page_addrs,
            plb_stats: PlbStats::default(),
            levels,
            top_count,
            pending: Vec::with_capacity(walk_capacity),
            observer: None,
        }
    }

    /// Posmap block index at chain level `l` (1-based) for a PLB page.
    #[inline]
    fn block_at(page: u64, l: usize) -> u64 {
        page / ENTRIES_PER_BLOCK.pow(l as u32 - 1)
    }

    #[inline]
    fn plb_set(&self, level: u16, block: u64) -> usize {
        // Direct-mapped by the block's low bits (hardware-style index),
        // XOR-folded with a per-level constant so different levels of
        // the same page don't pile into one set. Low-bit indexing keeps
        // the conflict pattern invariant under relabeling every address
        // by a multiple of the set count — the audit's combined-trace
        // byte-invariance check relies on exactly that property.
        let mix = (level as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        ((block ^ mix) % self.plb_sets.len() as u64) as usize
    }

    #[inline]
    fn plb_holds(&self, level: u16, block: u64) -> bool {
        self.plb_sets[self.plb_set(level, block)] == Some((level, block))
    }

    fn plb_install(&mut self, level: u16, block: u64) {
        let set = self.plb_set(level, block);
        match self.plb_sets[set] {
            Some(t) if t == (level, block) => {}
            other => {
                if other.is_some() {
                    self.plb_stats.evictions += 1;
                }
                self.plb_sets[set] = Some((level, block));
            }
        }
    }

    /// One real read access to level `l`'s ORAM for posmap block `b`:
    /// queues every resulting path phase for engine costing and mirrors
    /// the bucket touches to the observer. A stash hit inside the level
    /// controller produces no phases — the posmap block was still
    /// on-chip cached from an earlier walk, which is exactly the
    /// Freecursive behavior.
    fn access_level(&mut self, l: usize, b: u64) {
        let lev = &mut self.levels[l - 1];
        let res = lev.ctl.access(Request::read(BlockAddr::new(b)));
        for phase in res.phases.iter() {
            self.pending.push(PosmapPhase {
                phase: *phase,
                bucket_offset: lev.bucket_offset,
                level: l as u16,
            });
            if let Some(obs) = &self.observer {
                let mut o = obs.lock().expect("bus observer poisoned");
                let write = phase.kind == PhaseKind::EvictionWrite;
                for bid in phase.buckets() {
                    o.on_event(BusEvent::PosmapBucket {
                        bucket: bid.raw(),
                        level: l as u16,
                        write,
                    });
                }
            }
        }
    }

    /// The PLB front: a level-1 hit is free; otherwise walk down from
    /// the deepest PLB-resident level (the terminal map counts as
    /// always resident), issuing one level-ORAM access per step.
    fn walk_plb(&mut self, addr: BlockAddr) {
        let page = addr.raw() / self.plb_page_addrs;
        let k = self.levels.len();
        let mut deepest = k + 1;
        for l in 1..=k {
            if self.plb_holds(l as u16, Self::block_at(page, l)) {
                deepest = l;
                break;
            }
        }
        if deepest == 1 {
            self.plb_stats.hits += 1;
            return;
        }
        self.plb_stats.misses += 1;
        for l in (1..deepest).rev() {
            let b = Self::block_at(page, l);
            self.access_level(l, b);
            self.plb_install(l as u16, b);
        }
    }

    /// Per-level chain geometry: `(tree levels, block count)` for each
    /// ORAM level, largest first (reporting/diagnostics).
    pub fn level_geometry(&self) -> Vec<(u32, u64)> {
        self.levels
            .iter()
            .map(|l| (l.ctl.shape().levels(), l.count))
            .collect()
    }

    /// Blocks covered by the terminal on-chip map.
    pub fn top_count(&self) -> u64 {
        self.top_count
    }
}

/// Tree depth for a level storing `count` posmap blocks: one leaf per
/// block (capacity `z·(2^(L+1)−1)` slots, so utilization stays far
/// below the Path ORAM bound and the level stash cannot grow).
fn tree_levels_for(count: u64) -> u32 {
    let l = 64 - count.saturating_sub(1).leading_zeros();
    l.clamp(1, 31)
}

impl PosMapBackend for RecursivePosMap {
    fn lookup_or_assign(&mut self, addr: BlockAddr, rng: &mut Rng64) -> PosEntry {
        self.walk_plb(addr);
        let leaf_count = self.leaf_count;
        *self.entries.entry(addr.raw()).or_insert_with(|| PosEntry {
            label: LeafLabel::new(rng.below(leaf_count)),
            version: 0,
            site: RealCopySite::Unmapped,
        })
    }

    fn peek(&self, addr: BlockAddr) -> Option<PosEntry> {
        self.entries.get(&addr.raw()).copied()
    }

    fn remap_to(&mut self, addr: BlockAddr, label: LeafLabel) {
        assert!(label.raw() < self.leaf_count, "label out of range");
        let e = self.entries.get_mut(&addr.raw()).expect("remap of unknown address");
        e.label = label;
    }

    fn bump_version(&mut self, addr: BlockAddr) -> Version {
        let e = self
            .entries
            .get_mut(&addr.raw())
            .expect("version bump of unknown address");
        e.version += 1;
        e.version
    }

    fn set_site(&mut self, addr: BlockAddr, site: RealCopySite) {
        if let Some(e) = self.entries.get_mut(&addr.raw()) {
            e.site = site;
        }
    }

    fn version(&self, addr: BlockAddr) -> Version {
        self.entries.get(&addr.raw()).map_or(0, |e| e.version)
    }

    fn plb_stats(&self) -> PlbStats {
        self.plb_stats
    }

    fn leaf_count(&self) -> u64 {
        self.leaf_count
    }

    fn kind(&self) -> &'static str {
        "recursive"
    }

    fn pending(&self) -> &[PosmapPhase] {
        &self.pending
    }

    fn clear_pending(&mut self) {
        self.pending.clear();
    }

    fn onchip_bytes(&self) -> u64 {
        // Terminal map (8 B/label) + PLB tags (16 B/entry) + the level
        // controllers' stashes (one decrypted block ≈ 40 B each). The
        // functional entry map is *not* counted — it models state the
        // chain stores off chip.
        let stashes: u64 = self
            .levels
            .iter()
            .map(|l| l.ctl.config().stash_capacity as u64 * 40)
            .sum();
        self.top_count * 8 + self.plb_sets.len() as u64 * 16 + stashes
    }

    fn chain_levels(&self) -> u16 {
        self.levels.len() as u16
    }

    fn set_observer(&mut self, observer: Option<SharedObserver>) {
        self.observer = observer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `L = 9, z = 4` data tree: 4092 slots → 256 level-1 blocks at 16
    /// addrs/page = 2 KiB > 1 KiB budget → one ORAM level, 8-block top.
    fn one_level_cfg() -> (OramConfig, TreeShape) {
        let cfg = OramConfig {
            levels: 9,
            stash_capacity: 120,
            posmap: PosMapSelect::Recursive { onchip_kb: 1 },
            ..OramConfig::small_test()
        };
        (cfg, TreeShape::new(9, 4))
    }

    #[test]
    fn chain_terminates_within_budget() {
        let (cfg, shape) = one_level_cfg();
        let pm = RecursivePosMap::new(&cfg, shape, 1);
        assert_eq!(pm.chain_levels(), 1);
        assert_eq!(pm.level_geometry()[0].1, 256);
        assert_eq!(pm.top_count(), 8);
        assert!(pm.top_count() * 8 <= 1024, "terminal map within budget");
    }

    #[test]
    fn small_domains_degenerate_to_zero_levels() {
        let cfg = OramConfig::small_test()
            .with_posmap(PosMapSelect::Recursive { onchip_kb: 64 });
        let pm = RecursivePosMap::new(&cfg, TreeShape::new(7, 4), 64);
        assert_eq!(pm.chain_levels(), 0);
        let mut pm = pm;
        let mut rng = Rng64::seed_from_u64(1);
        pm.lookup_or_assign(BlockAddr::new(5), &mut rng);
        assert!(pm.pending().is_empty(), "no chain, no posmap traffic");
    }

    #[test]
    fn plb_miss_walks_and_hit_short_circuits() {
        let (cfg, shape) = one_level_cfg();
        let mut pm = RecursivePosMap::new(&cfg, shape, 1);
        let mut rng = Rng64::seed_from_u64(2);
        pm.lookup_or_assign(BlockAddr::new(0), &mut rng);
        assert_eq!(pm.plb_stats().misses, 1);
        assert!(!pm.pending().is_empty(), "cold miss issued a level access");
        let walked = pm.pending().len();
        assert!(walked <= 3, "one level access has at most three phases");
        pm.clear_pending();
        // Same page again: PLB hit, no new traffic.
        pm.lookup_or_assign(BlockAddr::new(1), &mut rng);
        assert_eq!(pm.plb_stats().hits, 1);
        assert!(pm.pending().is_empty());
    }

    #[test]
    fn pending_phases_carry_offsets_past_the_data_tree() {
        let (cfg, shape) = one_level_cfg();
        let mut pm = RecursivePosMap::new(&cfg, shape, 1);
        let mut rng = Rng64::seed_from_u64(3);
        pm.lookup_or_assign(BlockAddr::new(0), &mut rng);
        for p in pm.pending() {
            assert!(p.bucket_offset >= shape.bucket_count());
            assert_eq!(p.level, 1);
        }
    }

    #[test]
    fn deep_domains_build_multi_level_chains() {
        let cfg = OramConfig {
            levels: 14,
            stash_capacity: 160,
            posmap: PosMapSelect::Recursive { onchip_kb: 1 },
            ..OramConfig::small_test()
        };
        let shape = TreeShape::new(14, 4);
        // 131068 slots → 8192 L1 blocks → 256 L2 blocks → 8 on chip.
        let pm = RecursivePosMap::new(&cfg, shape, 1);
        assert_eq!(pm.chain_levels(), 2);
        assert_eq!(pm.top_count(), 8);
        // Levels are laid out back-to-back past the data tree.
        let geo = pm.level_geometry();
        assert!(geo[0].1 > geo[1].1, "block counts shrink up the chain");
    }

    #[test]
    fn onchip_state_excludes_the_functional_map() {
        let (cfg, shape) = one_level_cfg();
        let mut pm = RecursivePosMap::new(&cfg, shape, 1);
        let before = pm.onchip_bytes();
        let mut rng = Rng64::seed_from_u64(4);
        for a in 0..512u64 {
            pm.lookup_or_assign(BlockAddr::new(a), &mut rng);
            pm.clear_pending();
        }
        assert_eq!(pm.onchip_bytes(), before, "touching addresses adds no on-chip state");
    }
}

//! Randomized property tests over the protocol's core data structures:
//! tree geometry, eviction order, stash merge rules, duplication
//! eligibility and the hot-address cache.
//!
//! Each property runs over a fixed number of deterministically seeded
//! random cases (the in-repo [`Rng64`]), so failures reproduce exactly
//! without an external property-testing framework.

use oram_protocol::{
    Block, BlockAddr, BucketId, DupCandidate, EvictionOrder, HotAddressCache, InsertOutcome,
    LeafLabel, Stash, TreeShape,
};
use oram_util::Rng64;

const CASES: u64 = 256;

/// Every bucket on `path(leaf)` is an ancestor chain ending at the
/// leaf, and `bucket_on_path` agrees with it.
#[test]
fn paths_are_ancestor_chains() {
    let mut rng = Rng64::seed_from_u64(0x01);
    for _ in 0..CASES {
        let levels = rng.range_inclusive(1, 15) as u32;
        let shape = TreeShape::new(levels, 4);
        let leaf = LeafLabel::new(rng.below(shape.leaf_count()));
        let path = shape.path(leaf);
        assert_eq!(path.len() as u32, levels + 1);
        assert_eq!(path[0], BucketId::ROOT);
        for (lvl, b) in path.iter().enumerate() {
            assert_eq!(b.level() as usize, lvl);
            assert_eq!(shape.bucket_on_path(leaf, lvl as u32), *b);
        }
        for w in path.windows(2) {
            assert_eq!(w[1].parent(), Some(w[0]));
        }
    }
}

/// `common_level` is symmetric, bounded by L, and equals L iff the
/// leaves are equal.
#[test]
fn common_level_is_a_meet() {
    let mut rng = Rng64::seed_from_u64(0x02);
    for _ in 0..CASES {
        let levels = rng.range_inclusive(1, 15) as u32;
        let shape = TreeShape::new(levels, 1);
        let la = LeafLabel::new(rng.below(shape.leaf_count()));
        let lb = LeafLabel::new(rng.below(shape.leaf_count()));
        let cl = shape.common_level(la, lb);
        assert_eq!(cl, shape.common_level(lb, la));
        assert!(cl <= levels);
        assert_eq!(cl == levels, la == lb);
        // The bucket at the common level is shared; one below diverges.
        assert_eq!(shape.bucket_on_path(la, cl), shape.bucket_on_path(lb, cl));
        if cl < levels {
            assert_ne!(
                shape.bucket_on_path(la, cl + 1),
                shape.bucket_on_path(lb, cl + 1)
            );
        }
    }
}

/// The reverse-lexicographic eviction order visits every leaf exactly
/// once per cycle.
#[test]
fn eviction_order_is_a_permutation() {
    for levels in 1u32..12 {
        let mut order = EvictionOrder::new(levels);
        let n = 1u64 << levels;
        let mut seen = vec![false; n as usize];
        for _ in 0..n {
            let l = order.next_leaf().raw();
            assert!(!seen[l as usize], "leaf {l} visited twice (L={levels})");
            seen[l as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

/// Stash invariant: at most one entry per address, occupancy never
/// exceeds capacity, and a real block is never silently lost (insert
/// either stores, merges, or reports overflow).
#[test]
fn stash_never_loses_live_blocks() {
    let mut rng = Rng64::seed_from_u64(0x03);
    for _ in 0..64 {
        let mut stash = Stash::new(32);
        let mut live = std::collections::HashSet::new();
        let ops = rng.range_inclusive(1, 300);
        for _ in 0..ops {
            let addr_raw = rng.below(40);
            let as_shadow = rng.gen_bool(0.5);
            let version = rng.below(8);
            let addr = BlockAddr::new(addr_raw);
            let blk = Block::real(addr, LeafLabel::new(addr_raw % 16), addr_raw, version);
            let blk = if as_shadow { blk.to_shadow() } else { blk };
            match stash.insert(blk) {
                InsertOutcome::Overflow => {
                    assert!(!as_shadow, "shadows never overflow");
                }
                InsertOutcome::ShadowDropped => {
                    assert!(as_shadow, "reals are never shadow-dropped");
                }
                InsertOutcome::ReplacedVictim(victim) => {
                    live.remove(&victim);
                    if !as_shadow {
                        live.insert(addr);
                    }
                }
                _ => {
                    if !as_shadow {
                        live.insert(addr);
                    }
                }
            }
            assert!(stash.occupied() <= 32);
        }
        // Every tracked live address is still present (modulo merges that
        // upgraded entries, which keep the address).
        for addr in live {
            assert!(stash.peek(addr).is_some(), "lost {addr}");
        }
    }
}

/// Duplication eligibility (Rules 1-2) implies the shadow bucket is on
/// the candidate label's path and strictly above its real level.
#[test]
fn eligibility_implies_rules() {
    let mut rng = Rng64::seed_from_u64(0x04);
    for _ in 0..CASES * 4 {
        let levels = rng.range_inclusive(2, 13) as u32;
        let shape = TreeShape::new(levels, 4);
        let c = DupCandidate {
            addr: BlockAddr::new(1),
            label: LeafLabel::new(rng.below(shape.leaf_count())),
            data: 0,
            version: 0,
            real_level: (rng.below(14) as u32).min(levels),
            recirculated: false,
        };
        let leaf = LeafLabel::new(rng.below(shape.leaf_count()));
        let slot = (rng.below(14) as u32).min(levels);
        if c.eligible_at(&shape, leaf, slot) {
            assert!(slot < c.real_level, "Rule-2");
            // Rule-1: the slot bucket lies on the candidate's label path.
            assert_eq!(
                shape.bucket_on_path(leaf, slot),
                shape.bucket_on_path(c.label, slot),
                "Rule-1"
            );
        }
    }
}

/// The hot address cache never reports a priority above the number of
/// observations, and reset really clears it.
#[test]
fn hot_cache_priorities_are_bounded() {
    let mut rng = Rng64::seed_from_u64(0x05);
    for _ in 0..64 {
        let mut cache = HotAddressCache::new(8, 2);
        let mut counts = std::collections::HashMap::new();
        let n = rng.below(400);
        let observations: Vec<u64> = (0..n).map(|_| rng.below(64)).collect();
        for a in &observations {
            cache.observe(BlockAddr::new(*a));
            *counts.entry(*a).or_insert(0u64) += 1;
        }
        for (a, n) in counts {
            assert!(cache.priority(BlockAddr::new(a)) <= n);
        }
        cache.reset();
        for a in observations {
            assert_eq!(cache.priority(BlockAddr::new(a)), 0);
        }
    }
}

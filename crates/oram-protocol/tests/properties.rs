//! Randomized property tests over the protocol's core data structures:
//! tree geometry, eviction order, stash merge rules, duplication
//! eligibility and the hot-address cache.
//!
//! Each property runs over a fixed number of deterministically seeded
//! random cases (the in-repo [`Rng64`]), so failures reproduce exactly
//! without an external property-testing framework.

use oram_protocol::{
    build_posmap, Block, BlockAddr, BucketId, BusEvent, BusObserver, DupCandidate, EvictionOrder,
    HotAddressCache, InsertOutcome, LeafLabel, OramConfig, OramController, PosMapSelect,
    RealCopySite, Request, SharedObserver, Stash, TreeShape,
};
use oram_util::Rng64;
use std::sync::{Arc, Mutex};

const CASES: u64 = 256;

/// Every bucket on `path(leaf)` is an ancestor chain ending at the
/// leaf, and `bucket_on_path` agrees with it.
#[test]
fn paths_are_ancestor_chains() {
    let mut rng = Rng64::seed_from_u64(0x01);
    for _ in 0..CASES {
        let levels = rng.range_inclusive(1, 15) as u32;
        let shape = TreeShape::new(levels, 4);
        let leaf = LeafLabel::new(rng.below(shape.leaf_count()));
        let path = shape.path(leaf);
        assert_eq!(path.len() as u32, levels + 1);
        assert_eq!(path[0], BucketId::ROOT);
        for (lvl, b) in path.iter().enumerate() {
            assert_eq!(b.level() as usize, lvl);
            assert_eq!(shape.bucket_on_path(leaf, lvl as u32), *b);
        }
        for w in path.windows(2) {
            assert_eq!(w[1].parent(), Some(w[0]));
        }
    }
}

/// `common_level` is symmetric, bounded by L, and equals L iff the
/// leaves are equal.
#[test]
fn common_level_is_a_meet() {
    let mut rng = Rng64::seed_from_u64(0x02);
    for _ in 0..CASES {
        let levels = rng.range_inclusive(1, 15) as u32;
        let shape = TreeShape::new(levels, 1);
        let la = LeafLabel::new(rng.below(shape.leaf_count()));
        let lb = LeafLabel::new(rng.below(shape.leaf_count()));
        let cl = shape.common_level(la, lb);
        assert_eq!(cl, shape.common_level(lb, la));
        assert!(cl <= levels);
        assert_eq!(cl == levels, la == lb);
        // The bucket at the common level is shared; one below diverges.
        assert_eq!(shape.bucket_on_path(la, cl), shape.bucket_on_path(lb, cl));
        if cl < levels {
            assert_ne!(
                shape.bucket_on_path(la, cl + 1),
                shape.bucket_on_path(lb, cl + 1)
            );
        }
    }
}

/// The reverse-lexicographic eviction order visits every leaf exactly
/// once per cycle.
#[test]
fn eviction_order_is_a_permutation() {
    for levels in 1u32..12 {
        let mut order = EvictionOrder::new(levels);
        let n = 1u64 << levels;
        let mut seen = vec![false; n as usize];
        for _ in 0..n {
            let l = order.next_leaf().raw();
            assert!(!seen[l as usize], "leaf {l} visited twice (L={levels})");
            seen[l as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

/// Stash invariant: at most one entry per address, occupancy never
/// exceeds capacity, and a real block is never silently lost (insert
/// either stores, merges, or reports overflow).
#[test]
fn stash_never_loses_live_blocks() {
    let mut rng = Rng64::seed_from_u64(0x03);
    for _ in 0..64 {
        let mut stash = Stash::new(32);
        let mut live = std::collections::HashSet::new();
        let ops = rng.range_inclusive(1, 300);
        for _ in 0..ops {
            let addr_raw = rng.below(40);
            let as_shadow = rng.gen_bool(0.5);
            let version = rng.below(8);
            let addr = BlockAddr::new(addr_raw);
            let blk = Block::real(addr, LeafLabel::new(addr_raw % 16), addr_raw, version);
            let blk = if as_shadow { blk.to_shadow() } else { blk };
            match stash.insert(blk) {
                InsertOutcome::Overflow => {
                    assert!(!as_shadow, "shadows never overflow");
                }
                InsertOutcome::ShadowDropped => {
                    assert!(as_shadow, "reals are never shadow-dropped");
                }
                InsertOutcome::ReplacedVictim(victim) => {
                    live.remove(&victim);
                    if !as_shadow {
                        live.insert(addr);
                    }
                }
                _ => {
                    if !as_shadow {
                        live.insert(addr);
                    }
                }
            }
            assert!(stash.occupied() <= 32);
        }
        // Every tracked live address is still present (modulo merges that
        // upgraded entries, which keep the address).
        for addr in live {
            assert!(stash.peek(addr).is_some(), "lost {addr}");
        }
    }
}

/// Duplication eligibility (Rules 1-2) implies the shadow bucket is on
/// the candidate label's path and strictly above its real level.
#[test]
fn eligibility_implies_rules() {
    let mut rng = Rng64::seed_from_u64(0x04);
    for _ in 0..CASES * 4 {
        let levels = rng.range_inclusive(2, 13) as u32;
        let shape = TreeShape::new(levels, 4);
        let c = DupCandidate {
            addr: BlockAddr::new(1),
            label: LeafLabel::new(rng.below(shape.leaf_count())),
            data: 0,
            version: 0,
            real_level: (rng.below(14) as u32).min(levels),
            recirculated: false,
        };
        let leaf = LeafLabel::new(rng.below(shape.leaf_count()));
        let slot = (rng.below(14) as u32).min(levels);
        if c.eligible_at(&shape, leaf, slot) {
            assert!(slot < c.real_level, "Rule-2");
            // Rule-1: the slot bucket lies on the candidate's label path.
            assert_eq!(
                shape.bucket_on_path(leaf, slot),
                shape.bucket_on_path(c.label, slot),
                "Rule-1"
            );
        }
    }
}

/// The flat and recursive position-map backends are functionally
/// interchangeable: driven with the same seeded label rng through any
/// interleaving of lookups, remaps, version bumps and site updates, they
/// return identical entries — the recursive chain and its PLB only ever
/// change *cost*, never *answers*.
#[test]
fn recursive_and_flat_posmaps_agree_functionally() {
    let mut op_rng = Rng64::seed_from_u64(0x06);
    for case in 0..24u64 {
        let levels = op_rng.range_inclusive(6, 12) as u32;
        let flat_cfg = OramConfig::small_test().with_levels(levels);
        let rec_cfg = flat_cfg.with_posmap(PosMapSelect::Recursive { onchip_kb: 1 });
        let shape = TreeShape::new(levels, flat_cfg.z);
        let mut flat = build_posmap(&flat_cfg, shape);
        let mut rec = build_posmap(&rec_cfg, shape);
        // Each backend consumes its own label rng; identical seeds must
        // yield identical label streams (the trait contract).
        let mut rng_f = Rng64::seed_from_u64(0xBEEF ^ case);
        let mut rng_r = Rng64::seed_from_u64(0xBEEF ^ case);
        let domain = 200u64.min(shape.slot_count());
        let mut seen: Vec<u64> = Vec::new();
        for _ in 0..600 {
            match op_rng.below(4) {
                2 if !seen.is_empty() => {
                    let a = seen[op_rng.below(seen.len() as u64) as usize];
                    let label = LeafLabel::new(op_rng.below(shape.leaf_count()));
                    flat.remap_to(BlockAddr::new(a), label);
                    rec.remap_to(BlockAddr::new(a), label);
                }
                3 if !seen.is_empty() => {
                    let a = seen[op_rng.below(seen.len() as u64) as usize];
                    let addr = BlockAddr::new(a);
                    assert_eq!(flat.bump_version(addr), rec.bump_version(addr));
                    let site = RealCopySite::Tree { level: op_rng.below(u64::from(levels) + 1) as u32 };
                    flat.set_site(addr, site);
                    rec.set_site(addr, site);
                }
                _ => {
                    let a = op_rng.below(domain);
                    let addr = BlockAddr::new(a);
                    let ef = flat.lookup_or_assign(addr, &mut rng_f);
                    let er = rec.lookup_or_assign(addr, &mut rng_r);
                    assert_eq!(ef, er, "case {case}: lookup({a}) diverged");
                    rec.clear_pending();
                    seen.push(a);
                }
            }
        }
        for a in 0..domain {
            let addr = BlockAddr::new(a);
            assert_eq!(flat.peek(addr), rec.peek(addr), "case {case}: peek({a})");
            assert_eq!(flat.version(addr), rec.version(addr), "case {case}: version({a})");
        }
    }
}

/// A bus-event sink; keeps the typed handle so the trace can be read
/// back out after the run.
#[derive(Debug, Default)]
struct TraceSink(Vec<BusEvent>);

impl BusObserver for TraceSink {
    fn on_event(&mut self, event: BusEvent) {
        self.0.push(event);
    }
}

fn bus_trace(cfg: OramConfig) -> Vec<BusEvent> {
    let mut ctl = OramController::new(cfg).unwrap();
    // Prefill only a slice of the working set: the remaining addresses
    // are first-touched inside the observed window, so the recursive
    // backend must walk its chain while the trace is recording.
    ctl.prefill((0..20u64).map(|i| (BlockAddr::new(i), i)));
    let sink = Arc::new(Mutex::new(TraceSink::default()));
    ctl.set_observer(Some(sink.clone() as SharedObserver));
    let mut x = 0x9E3779B97F4A7C15u64;
    for i in 0..1500u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let addr = BlockAddr::new(x % 120);
        if x.is_multiple_of(3) {
            ctl.access(Request::write(addr, i));
        } else {
            ctl.access(Request::read(addr));
        }
        if x.is_multiple_of(11) {
            ctl.dummy_access();
        }
    }
    ctl.set_observer(None);
    let events = sink.lock().unwrap().0.clone();
    events
}

/// With a PLB large enough to never evict, the recursive position map's
/// *data-ORAM* bus trace is byte-identical to flat mode's: every posmap
/// touch rides its own `PosmapBucket` events and nothing else moves.
#[test]
fn infinite_plb_recursive_matches_flat_on_the_data_bus() {
    let mut flat_cfg = OramConfig::small_test().with_levels(9).with_seed(7);
    flat_cfg.plb_entries = 1 << 16;
    let rec_cfg = flat_cfg.with_posmap(PosMapSelect::Recursive { onchip_kb: 1 });

    let flat = bus_trace(flat_cfg);
    let rec = bus_trace(rec_cfg);

    assert!(
        !flat.iter().any(|e| matches!(e, BusEvent::PosmapBucket { .. })),
        "flat mode must never emit posmap bus events"
    );
    assert!(
        rec.iter().any(|e| matches!(e, BusEvent::PosmapBucket { .. })),
        "recursive run never walked the posmap chain (test is vacuous)"
    );
    let rec_data: Vec<BusEvent> = rec
        .into_iter()
        .filter(|e| !matches!(e, BusEvent::PosmapBucket { .. }))
        .collect();
    assert_eq!(flat, rec_data, "data-ORAM traces diverged");
}

/// The hot address cache never reports a priority above the number of
/// observations, and reset really clears it.
#[test]
fn hot_cache_priorities_are_bounded() {
    let mut rng = Rng64::seed_from_u64(0x05);
    for _ in 0..64 {
        let mut cache = HotAddressCache::new(8, 2);
        let mut counts = std::collections::HashMap::new();
        let n = rng.below(400);
        let observations: Vec<u64> = (0..n).map(|_| rng.below(64)).collect();
        for a in &observations {
            cache.observe(BlockAddr::new(*a));
            *counts.entry(*a).or_insert(0u64) += 1;
        }
        for (a, n) in counts {
            assert!(cache.priority(BlockAddr::new(a)) <= n);
        }
        cache.reset();
        for a in observations {
            assert_eq!(cache.priority(BlockAddr::new(a)), 0);
        }
    }
}

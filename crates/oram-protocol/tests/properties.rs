//! Property-based tests over the protocol's core data structures:
//! tree geometry, eviction order, stash merge rules, duplication
//! eligibility and the hot-address cache.

use oram_protocol::{
    Block, BlockAddr, BucketId, DupCandidate, EvictionOrder, HotAddressCache, InsertOutcome,
    LeafLabel, Stash, TreeShape,
};
use proptest::prelude::*;

proptest! {
    /// Every bucket on `path(leaf)` is an ancestor chain ending at the
    /// leaf, and `bucket_on_path` agrees with it.
    #[test]
    fn paths_are_ancestor_chains(levels in 1u32..16, leaf_seed in any::<u64>()) {
        let shape = TreeShape::new(levels, 4);
        let leaf = LeafLabel::new(leaf_seed % shape.leaf_count());
        let path = shape.path(leaf);
        prop_assert_eq!(path.len() as u32, levels + 1);
        prop_assert_eq!(path[0], BucketId::ROOT);
        for (lvl, b) in path.iter().enumerate() {
            prop_assert_eq!(b.level() as usize, lvl);
            prop_assert_eq!(shape.bucket_on_path(leaf, lvl as u32), *b);
        }
        for w in path.windows(2) {
            prop_assert_eq!(w[1].parent(), Some(w[0]));
        }
    }

    /// `common_level` is symmetric, bounded by L, and equals L iff the
    /// leaves are equal.
    #[test]
    fn common_level_is_a_meet(levels in 1u32..16, a in any::<u64>(), b in any::<u64>()) {
        let shape = TreeShape::new(levels, 1);
        let la = LeafLabel::new(a % shape.leaf_count());
        let lb = LeafLabel::new(b % shape.leaf_count());
        let cl = shape.common_level(la, lb);
        prop_assert_eq!(cl, shape.common_level(lb, la));
        prop_assert!(cl <= levels);
        prop_assert_eq!(cl == levels, la == lb);
        // The bucket at the common level is shared; one below diverges.
        prop_assert_eq!(shape.bucket_on_path(la, cl), shape.bucket_on_path(lb, cl));
        if cl < levels {
            prop_assert_ne!(
                shape.bucket_on_path(la, cl + 1),
                shape.bucket_on_path(lb, cl + 1)
            );
        }
    }

    /// The reverse-lexicographic eviction order visits every leaf exactly
    /// once per cycle.
    #[test]
    fn eviction_order_is_a_permutation(levels in 1u32..12) {
        let mut order = EvictionOrder::new(levels);
        let n = 1u64 << levels;
        let mut seen = vec![false; n as usize];
        for _ in 0..n {
            let l = order.next_leaf().raw();
            prop_assert!(!seen[l as usize], "leaf {} visited twice", l);
            seen[l as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Stash invariant: at most one entry per address, occupancy never
    /// exceeds capacity, and a real block is never silently lost (insert
    /// either stores, merges, or reports overflow).
    #[test]
    fn stash_never_loses_live_blocks(
        ops in prop::collection::vec((0u64..40, any::<bool>(), 0u64..8), 1..300),
    ) {
        let mut stash = Stash::new(32);
        let mut live = std::collections::HashSet::new();
        for (addr_raw, as_shadow, version) in ops {
            let addr = BlockAddr::new(addr_raw);
            let blk = Block::real(addr, LeafLabel::new(addr_raw % 16), addr_raw, version);
            let blk = if as_shadow { blk.to_shadow() } else { blk };
            let out = stash.insert(blk);
            match out {
                InsertOutcome::Overflow => {
                    prop_assert!(!as_shadow, "shadows never overflow");
                }
                InsertOutcome::ShadowDropped => {
                    prop_assert!(as_shadow, "reals are never shadow-dropped");
                }
                InsertOutcome::ReplacedVictim(victim) => {
                    live.remove(&victim);
                    if !as_shadow {
                        live.insert(addr);
                    }
                }
                _ => {
                    if !as_shadow {
                        live.insert(addr);
                    }
                }
            }
            prop_assert!(stash.occupied() <= 32);
        }
        // Every tracked live address is still present (modulo merges that
        // upgraded entries, which keep the address).
        for addr in live {
            prop_assert!(stash.peek(addr).is_some(), "lost {addr}");
        }
    }

    /// Duplication eligibility (Rules 1-2) implies the shadow bucket is on
    /// the candidate label's path and strictly above its real level.
    #[test]
    fn eligibility_implies_rules(
        levels in 2u32..14,
        label in any::<u64>(),
        evict in any::<u64>(),
        real_level in 0u32..14,
        slot_level in 0u32..14,
    ) {
        let shape = TreeShape::new(levels, 4);
        let c = DupCandidate {
            addr: BlockAddr::new(1),
            label: LeafLabel::new(label % shape.leaf_count()),
            data: 0,
            version: 0,
            real_level: real_level.min(levels),
            recirculated: false,
        };
        let leaf = LeafLabel::new(evict % shape.leaf_count());
        let slot = slot_level.min(levels);
        if c.eligible_at(&shape, leaf, slot) {
            prop_assert!(slot < c.real_level, "Rule-2");
            // Rule-1: the slot bucket lies on the candidate's label path.
            prop_assert_eq!(
                shape.bucket_on_path(leaf, slot),
                shape.bucket_on_path(c.label, slot),
                "Rule-1"
            );
        }
    }

    /// The hot address cache never reports a priority above the number of
    /// observations, and reset really clears it.
    #[test]
    fn hot_cache_priorities_are_bounded(
        observations in prop::collection::vec(0u64..64, 0..400),
    ) {
        let mut cache = HotAddressCache::new(8, 2);
        let mut counts = std::collections::HashMap::new();
        for a in &observations {
            cache.observe(BlockAddr::new(*a));
            *counts.entry(*a).or_insert(0u64) += 1;
        }
        for (a, n) in counts {
            prop_assert!(cache.priority(BlockAddr::new(a)) <= n);
        }
        cache.reset();
        for a in observations {
            prop_assert_eq!(cache.priority(BlockAddr::new(a)), 0);
        }
    }
}

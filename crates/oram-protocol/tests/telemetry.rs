//! Controller telemetry contract: the metric stream must agree exactly
//! with the controller's own `OramStats` aggregates, and attaching a
//! sink must not change protocol behavior.

use std::sync::{Arc, Mutex};

use oram_protocol::{BlockAddr, DupPolicy, OramConfig, OramController, Request};
use oram_telemetry::{TelemetryConfig, TelemetryRecorder};
use oram_util::{MetricId, SharedTelemetry};

fn drive(ctl: &mut OramController, n: u64) {
    let mut x = 0x243F6A8885A308D3u64;
    for i in 0..n {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let addr = BlockAddr::new(x % 71);
        if x.is_multiple_of(4) {
            ctl.access(Request::write(addr, i));
        } else {
            ctl.access(Request::read(addr));
        }
        if x.is_multiple_of(9) {
            ctl.dummy_access();
        }
    }
}

fn run_with_telemetry(policy: DupPolicy) -> (OramController, Arc<Mutex<TelemetryRecorder>>) {
    let mut ctl =
        OramController::new(OramConfig::small_test().with_dup_policy(policy)).unwrap();
    let rec = TelemetryRecorder::shared(TelemetryConfig::default());
    let sink: SharedTelemetry = TelemetryRecorder::as_sink(&rec);
    ctl.set_telemetry(Some(sink));
    drive(&mut ctl, 3000);
    (ctl, rec)
}

#[test]
fn counters_match_oram_stats_for_all_policies() {
    for policy in [
        DupPolicy::Off,
        DupPolicy::RdOnly,
        DupPolicy::HdOnly,
        DupPolicy::Static { partition_level: 3 },
        DupPolicy::Dynamic { counter_bits: 3 },
    ] {
        let (ctl, rec) = run_with_telemetry(policy);
        let s = ctl.stats();
        let r = rec.lock().unwrap();
        let m = r.metrics();
        let c = |id| m.counter(id);

        assert_eq!(
            c(MetricId::StashHitReal) + c(MetricId::StashHitReplaceable),
            s.stash_served,
            "{policy:?}: stash hit classes partition stash_served"
        );
        assert_eq!(c(MetricId::StashHitReplaceable), s.replaceable_stash_served, "{policy:?}");
        assert_eq!(c(MetricId::StashHitShadow), s.shadow_stash_served, "{policy:?}");
        assert_eq!(c(MetricId::TreetopServed), s.treetop_served, "{policy:?}");
        assert_eq!(
            c(MetricId::DramServedReal) + c(MetricId::DramServedShadow),
            s.dram_served,
            "{policy:?}: dram serve classes partition dram_served"
        );
        assert_eq!(c(MetricId::DramServedShadow), s.shadow_advanced, "{policy:?}");
        assert_eq!(c(MetricId::FreshServed), s.fresh_served, "{policy:?}");
        assert_eq!(c(MetricId::StaleDiscarded), s.stale_discarded, "{policy:?}");
        assert_eq!(c(MetricId::Evictions), s.evictions, "{policy:?}");
        assert_eq!(c(MetricId::RdShadowWritten), s.rd_shadows_written, "{policy:?}");
        assert_eq!(c(MetricId::HdShadowWritten), s.hd_shadows_written, "{policy:?}");
        assert_eq!(c(MetricId::DummyBlockWritten), s.dummy_blocks_written, "{policy:?}");
        assert_eq!(c(MetricId::RecirculatedShadow), s.recirculated_shadows, "{policy:?}");

        // Histogram totals tie to the same aggregates.
        assert_eq!(m.histogram(MetricId::ServedPosition).count(), s.dram_served);
        assert_eq!(m.histogram(MetricId::ServedPosition).sum(), s.served_position_sum);
        assert_eq!(m.histogram(MetricId::RealPosition).sum(), s.real_position_sum);
        assert_eq!(m.histogram(MetricId::StashOccupancy).count(), s.evictions);
        assert_eq!(m.histogram(MetricId::DupQueueDepth).count(), s.evictions);

        // Hot-cache classification matches the cache's own stats.
        let hc = ctl.hot_cache().stats();
        assert_eq!(c(MetricId::HotCacheHit), hc.hits, "{policy:?}");
        assert_eq!(c(MetricId::HotCacheMiss), hc.misses, "{policy:?}");
        assert_eq!(c(MetricId::HotCacheEvict), hc.evictions, "{policy:?}");
    }
}

#[test]
fn telemetry_attachment_does_not_change_behavior() {
    // Same seed, same request stream: stats with and without a sink
    // attached must be bit-identical.
    for policy in [DupPolicy::Off, DupPolicy::Dynamic { counter_bits: 3 }] {
        let mut plain =
            OramController::new(OramConfig::small_test().with_dup_policy(policy)).unwrap();
        drive(&mut plain, 3000);
        let (instrumented, _rec) = run_with_telemetry(policy);
        assert_eq!(plain.stats(), instrumented.stats(), "{policy:?}");
    }
}

#[test]
fn dynamic_policy_emits_dri_transitions() {
    let (_, rec) = run_with_telemetry(DupPolicy::Dynamic { counter_bits: 3 });
    let r = rec.lock().unwrap();
    let m = r.metrics();
    // The mixed real/dummy stream must move the saturating counter in
    // both directions.
    assert!(m.counter(MetricId::DriCounterUp) > 0, "dummies push the counter up");
    assert!(m.counter(MetricId::DriCounterDown) > 0, "real requests pull it down");
}

#[test]
fn shadow_policies_emit_pulls_and_positions() {
    let (_, rec) = run_with_telemetry(DupPolicy::RdOnly);
    let r = rec.lock().unwrap();
    let m = r.metrics();
    assert!(m.counter(MetricId::DramServedShadow) > 0, "shadow serves happen");
    let adv = m.histogram(MetricId::AdvanceDepth);
    assert!(adv.count() > 0, "advance depths sampled");
    assert!(adv.max() > 0, "some access was served strictly earlier");

    let (_, rec) = run_with_telemetry(DupPolicy::HdOnly);
    let r = rec.lock().unwrap();
    assert!(
        r.metrics().counter(MetricId::ShadowStashPull) > 0,
        "HD-Dup pulls shadows into the stash"
    );
}

//! # oram-cpu
//!
//! Trace-driven CPU models and cache hierarchy for the Shadow Block
//! reproduction: the substrate that turns a synthetic workload's memory
//! references into the LLC miss stream that drives the ORAM controller.
//!
//! * [`Cache`] — generic set-associative write-back cache (LRU).
//! * [`CacheHierarchy`] — L1 + L2/LLC per Table I of the paper.
//! * [`InOrderCore`] — the paper's baseline single in-order core: blocks
//!   on every demand miss.
//! * [`O3Frontend`] — the quad-core out-of-order sensitivity model:
//!   merged per-core miss streams with memory-level parallelism.
//! * [`MissStream`] / [`RefStream`] — the trace-driven boundary between
//!   workloads, cores, and the memory system.
//!
//! ## Quick example
//!
//! ```
//! use oram_cpu::{InOrderCore, HierarchyConfig, MemRef, MissStream};
//!
//! let refs = vec![MemRef::read(0, 5), MemRef::read(0, 5), MemRef::read(10_000, 5)];
//! let mut core = InOrderCore::new(refs.into_iter(), HierarchyConfig::small_test());
//! let first = core.next_miss().unwrap();
//! assert_eq!(first.block_addr, 0); // cold miss; the repeat access hits
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod core;
mod hierarchy;
mod o3;
mod stream;

pub use crate::core::InOrderCore;
pub use cache::{Cache, CacheAccess, CacheStats};
pub use hierarchy::{CacheHierarchy, HierarchyConfig, HierarchyOutcome};
pub use o3::{O3Config, O3Frontend};
pub use stream::{MemRef, MissRecord, MissStream, RefStream, ReplayMisses};

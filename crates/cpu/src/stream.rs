//! Memory-reference and LLC-miss stream abstractions.
//!
//! Workload generators produce [`MemRef`]s; the cache hierarchy filters
//! them into [`MissRecord`]s — the only thing the ORAM subsystem ever
//! sees. The simulator is trace-driven at this boundary.


/// One memory reference as issued by the core (before any cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// 64-byte block address.
    pub block_addr: u64,
    /// `true` for stores.
    pub is_write: bool,
    /// Compute cycles the core spends *before* issuing this reference.
    pub gap_cycles: u32,
    /// `true` if this reference's address depends on the previous
    /// reference's data (pointer chase): it cannot issue until the
    /// previous load returns.
    pub depends_on_prev: bool,
}

impl MemRef {
    /// A simple independent read after `gap` compute cycles.
    pub fn read(block_addr: u64, gap: u32) -> Self {
        MemRef { block_addr, is_write: false, gap_cycles: gap, depends_on_prev: false }
    }

    /// A simple independent write after `gap` compute cycles.
    pub fn write(block_addr: u64, gap: u32) -> Self {
        MemRef { block_addr, is_write: true, gap_cycles: gap, depends_on_prev: false }
    }
}

/// A stream of memory references.
///
/// Implementors are ordinary iterators with a known (possibly infinite)
/// character; the trait exists so generators and recorded traces can be
/// used interchangeably.
pub trait RefStream {
    /// Returns the next reference, or `None` when the trace ends.
    fn next_ref(&mut self) -> Option<MemRef>;
}

impl<I: Iterator<Item = MemRef>> RefStream for I {
    fn next_ref(&mut self) -> Option<MemRef> {
        self.next()
    }
}

/// One LLC miss as seen by the memory (ORAM) subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissRecord {
    /// 64-byte block address.
    pub block_addr: u64,
    /// `true` for stores and dirty write-backs.
    pub is_write: bool,
    /// Compute + cache-hit cycles elapsed since the previous miss was
    /// *serviced* (what the CPU does between misses).
    pub gap_cycles: u64,
    /// Whether the core must stall for this miss (demand miss) or it can
    /// proceed (write-back).
    pub blocking: bool,
}

/// A stream of LLC misses.
pub trait MissStream {
    /// Returns the next miss, or `None` when the trace ends.
    fn next_miss(&mut self) -> Option<MissRecord>;
}

/// Adapter: replay a pre-recorded vector of misses.
#[derive(Debug, Clone)]
pub struct ReplayMisses {
    records: std::vec::IntoIter<MissRecord>,
}

impl ReplayMisses {
    /// Creates a replay stream from recorded misses.
    pub fn new(records: Vec<MissRecord>) -> Self {
        ReplayMisses { records: records.into_iter() }
    }
}

impl MissStream for ReplayMisses {
    fn next_miss(&mut self) -> Option<MissRecord> {
        self.records.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memref_constructors() {
        let r = MemRef::read(5, 10);
        assert!(!r.is_write);
        assert_eq!(r.gap_cycles, 10);
        let w = MemRef::write(6, 0);
        assert!(w.is_write);
    }

    #[test]
    fn iterators_are_ref_streams() {
        let refs = vec![MemRef::read(1, 0), MemRef::read(2, 0)];
        let mut s = refs.into_iter();
        assert_eq!(RefStream::next_ref(&mut s).unwrap().block_addr, 1);
        assert_eq!(RefStream::next_ref(&mut s).unwrap().block_addr, 2);
        assert!(RefStream::next_ref(&mut s).is_none());
    }

    #[test]
    fn replay_misses_round_trips() {
        let recs = vec![
            MissRecord { block_addr: 1, is_write: false, gap_cycles: 3, blocking: true },
            MissRecord { block_addr: 2, is_write: true, gap_cycles: 0, blocking: false },
        ];
        let mut s = ReplayMisses::new(recs.clone());
        assert_eq!(s.next_miss(), Some(recs[0]));
        assert_eq!(s.next_miss(), Some(recs[1]));
        assert_eq!(s.next_miss(), None);
    }
}

//! Generic set-associative, write-back/write-allocate cache with LRU
//! replacement — the building block for the L1/L2 hierarchy.


/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAccess {
    /// The line was present.
    Hit,
    /// The line was absent; it has been allocated. If the victim line was
    /// dirty, its block address is returned for write-back.
    Miss {
        /// Dirty victim evicted by the fill, if any (block address).
        writeback: Option<u64>,
    },
}

impl CacheAccess {
    /// Returns `true` for hits.
    pub fn is_hit(&self) -> bool {
        matches!(self, CacheAccess::Hit)
    }
}

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Dirty write-backs produced.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]`; 0 when no accesses happened.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    dirty: bool,
    /// LRU timestamp: larger = more recent.
    lru: u64,
}

/// A set-associative cache over 64-byte lines, addressed by *block*
/// address (byte address / 64).
///
/// ```
/// use oram_cpu::{Cache, CacheAccess};
/// let mut c = Cache::new(4 * 1024, 2); // 4 KB, 2-way
/// assert!(!c.access(7, false).is_hit());
/// assert!(c.access(7, false).is_hit());
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<Line>>,
    ways: usize,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache of `size_bytes` capacity and `ways` associativity
    /// with 64-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets or ways, or size
    /// not a multiple of `64 * ways`).
    pub fn new(size_bytes: usize, ways: usize) -> Self {
        assert!(ways > 0, "associativity must be positive");
        assert!(
            size_bytes.is_multiple_of(64 * ways) && size_bytes > 0,
            "size must be a positive multiple of 64 * ways"
        );
        let sets = size_bytes / (64 * ways);
        Cache {
            sets: vec![Vec::with_capacity(ways); sets],
            ways,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of sets.
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Accesses `block_addr`; `write` marks the line dirty on hit or fill.
    pub fn access(&mut self, block_addr: u64, write: bool) -> CacheAccess {
        self.clock += 1;
        let set_count = self.sets.len() as u64;
        let set_ix = (block_addr % set_count) as usize;
        let tag = block_addr / set_count;
        let clock = self.clock;
        let set = &mut self.sets[set_ix];

        if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
            line.lru = clock;
            line.dirty |= write;
            self.stats.hits += 1;
            return CacheAccess::Hit;
        }

        self.stats.misses += 1;
        let mut writeback = None;
        if set.len() >= self.ways {
            let victim_ix = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .map(|(i, _)| i)
                .expect("non-empty set");
            let victim = set.swap_remove(victim_ix);
            if victim.dirty {
                let victim_block = victim.tag * set_count + set_ix as u64;
                writeback = Some(victim_block);
                self.stats.writebacks += 1;
            }
        }
        set.push(Line { tag, dirty: write, lru: clock });
        CacheAccess::Miss { writeback }
    }

    /// Returns `true` if `block_addr` is resident (no LRU update).
    pub fn contains(&self, block_addr: u64) -> bool {
        let set_ix = (block_addr % self.sets.len() as u64) as usize;
        let tag = block_addr / self.sets.len() as u64;
        self.sets[set_ix].iter().any(|l| l.tag == tag)
    }

    /// Invalidates everything, keeping statistics.
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_hit_miss() {
        let mut c = Cache::new(64 * 8, 2); // 8 lines, 4 sets x 2 ways
        assert!(!c.access(1, false).is_hit());
        assert!(c.access(1, false).is_hit());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = Cache::new(64 * 2, 2); // 1 set, 2 ways
        c.access(0, false);
        c.access(1, false);
        c.access(0, false); // 0 now MRU
        c.access(2, false); // evicts 1
        assert!(c.contains(0));
        assert!(!c.contains(1));
        assert!(c.contains(2));
    }

    #[test]
    fn dirty_victim_produces_writeback() {
        let mut c = Cache::new(64 * 2, 2); // 1 set, 2 ways
        c.access(0, true); // dirty
        c.access(1, false);
        let out = c.access(2, false); // evicts 0 (LRU, dirty)
        assert_eq!(out, CacheAccess::Miss { writeback: Some(0) });
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_victim_no_writeback() {
        let mut c = Cache::new(64 * 2, 2);
        c.access(0, false);
        c.access(1, false);
        let out = c.access(2, false);
        assert_eq!(out, CacheAccess::Miss { writeback: None });
    }

    #[test]
    fn writeback_reconstructs_correct_address() {
        let mut c = Cache::new(64 * 8, 2); // 4 sets
        // Block addresses 3, 7, 11 all map to set 3.
        c.access(3, true);
        c.access(7, false);
        let out = c.access(11, false);
        assert_eq!(out, CacheAccess::Miss { writeback: Some(3) });
    }

    #[test]
    fn hit_marks_dirty_for_later_writeback() {
        let mut c = Cache::new(64 * 2, 2);
        c.access(0, false);
        c.access(0, true); // becomes dirty via hit
        c.access(1, false);
        let out = c.access(2, false);
        assert_eq!(out, CacheAccess::Miss { writeback: Some(0) });
    }

    #[test]
    fn flush_clears_contents() {
        let mut c = Cache::new(64 * 4, 2);
        c.access(5, false);
        c.flush();
        assert!(!c.contains(5));
    }

    #[test]
    fn working_set_within_capacity_stops_missing() {
        let mut c = Cache::new(64 * 64, 4); // 64 lines
        for round in 0..3 {
            for a in 0..32u64 {
                let hit = c.access(a, false).is_hit();
                if round > 0 {
                    assert!(hit, "addr {a} round {round} should hit");
                }
            }
        }
    }

    #[test]
    fn miss_rate_calculation() {
        let mut c = Cache::new(64 * 4, 2);
        c.access(0, false);
        c.access(0, false);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-9);
    }
}

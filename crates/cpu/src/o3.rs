//! Simplified out-of-order / multicore front-end.
//!
//! The paper's sensitivity study (Fig. 18) swaps the in-order core for a
//! quad-core 8-way out-of-order CPU with a shared LLC, each core running a
//! copy of the benchmark. Two effects matter for ORAM behavior and both
//! are captured here without modeling a pipeline:
//!
//! * **Memory-level parallelism** — an O3 core keeps executing past a load
//!   miss until its reorder-buffer window fills or a dependent use is
//!   reached, so several misses overlap and effective inter-miss gaps
//!   shrink. We model this by scaling gaps down and marking a fraction of
//!   misses non-blocking (those the window can hide).
//! * **Multicore interleaving** — per-core miss streams merge into one
//!   memory-side stream, multiplying miss intensity.
//!
//! The result is the higher memory intensity the paper observes, which
//! reduces DRI and therefore RD-Dup's advantage.


use crate::stream::{MissRecord, MissStream};

/// Configuration of the O3 window model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct O3Config {
    /// Cores sharing the LLC (paper: 4).
    pub cores: usize,
    /// Of `window` consecutive misses, the first `window - 1` can be
    /// overlapped by the ROB; every `window`-th miss drains the pipeline
    /// and blocks (models dependent loads / window exhaustion). Paper's
    /// 8-way core ≈ window 4.
    pub window: usize,
    /// Gap scale in percent (compute overlaps with outstanding misses, so
    /// effective gaps shrink; 100 = unchanged).
    pub gap_scale_pct: u32,
}

impl O3Config {
    /// The paper's quad-core 8-way O3 configuration.
    pub fn paper_o3() -> Self {
        O3Config { cores: 4, window: 4, gap_scale_pct: 35 }
    }
}

impl Default for O3Config {
    fn default() -> Self {
        O3Config::paper_o3()
    }
}

/// Wraps per-core miss streams into one memory-side stream with MLP
/// semantics applied.
#[derive(Debug)]
pub struct O3Frontend<S> {
    cores: Vec<S>,
    cfg: O3Config,
    /// Round-robin pointer over cores.
    next_core: usize,
    /// Per-core position in the blocking window.
    window_pos: Vec<usize>,
    exhausted: Vec<bool>,
}

impl<S: MissStream> O3Frontend<S> {
    /// Creates the front-end from one miss stream per core.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is empty or `cfg.window` is zero.
    pub fn new(streams: Vec<S>, cfg: O3Config) -> Self {
        assert!(!streams.is_empty(), "need at least one core");
        assert!(cfg.window > 0, "window must be positive");
        let n = streams.len();
        O3Frontend {
            cores: streams,
            cfg,
            next_core: 0,
            window_pos: vec![0; n],
            exhausted: vec![false; n],
        }
    }
}

impl<S: MissStream> MissStream for O3Frontend<S> {
    fn next_miss(&mut self) -> Option<MissRecord> {
        let n = self.cores.len();
        for _ in 0..n {
            let c = self.next_core;
            self.next_core = (self.next_core + 1) % n;
            if self.exhausted[c] {
                continue;
            }
            match self.cores[c].next_miss() {
                Some(mut m) => {
                    // Scale the gap for overlap with outstanding misses.
                    m.gap_cycles =
                        m.gap_cycles * u64::from(self.cfg.gap_scale_pct) / 100;
                    if m.blocking {
                        // Only every `window`-th demand miss blocks.
                        self.window_pos[c] = (self.window_pos[c] + 1) % self.cfg.window;
                        if self.window_pos[c] != 0 {
                            m.blocking = false;
                        }
                    }
                    return Some(m);
                }
                None => self.exhausted[c] = true,
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::ReplayMisses;

    fn miss(addr: u64, gap: u64) -> MissRecord {
        MissRecord { block_addr: addr, is_write: false, gap_cycles: gap, blocking: true }
    }

    #[test]
    fn merges_streams_round_robin() {
        let a = ReplayMisses::new(vec![miss(1, 0), miss(2, 0)]);
        let b = ReplayMisses::new(vec![miss(10, 0), miss(20, 0)]);
        let cfg = O3Config { cores: 2, window: 1, gap_scale_pct: 100 };
        let mut fe = O3Frontend::new(vec![a, b], cfg);
        let order: Vec<u64> = std::iter::from_fn(|| fe.next_miss())
            .map(|m| m.block_addr)
            .collect();
        assert_eq!(order, vec![1, 10, 2, 20]);
    }

    #[test]
    fn gaps_are_scaled() {
        let a = ReplayMisses::new(vec![miss(1, 100)]);
        let cfg = O3Config { cores: 1, window: 1, gap_scale_pct: 35 };
        let mut fe = O3Frontend::new(vec![a], cfg);
        assert_eq!(fe.next_miss().unwrap().gap_cycles, 35);
    }

    #[test]
    fn window_unblocks_all_but_every_nth() {
        let a = ReplayMisses::new((0..8).map(|i| miss(i, 0)).collect());
        let cfg = O3Config { cores: 1, window: 4, gap_scale_pct: 100 };
        let mut fe = O3Frontend::new(vec![a], cfg);
        let blocking: Vec<bool> = std::iter::from_fn(|| fe.next_miss())
            .map(|m| m.blocking)
            .collect();
        // Positions 3 and 7 (every 4th) block; the rest overlap.
        assert_eq!(blocking, vec![false, false, false, true, false, false, false, true]);
    }

    #[test]
    fn nonblocking_writebacks_stay_nonblocking() {
        let wb = MissRecord { block_addr: 9, is_write: true, gap_cycles: 0, blocking: false };
        let a = ReplayMisses::new(vec![wb]);
        let mut fe = O3Frontend::new(vec![a], O3Config::paper_o3());
        assert!(!fe.next_miss().unwrap().blocking);
    }

    #[test]
    fn uneven_streams_drain_completely() {
        let a = ReplayMisses::new(vec![miss(1, 0)]);
        let b = ReplayMisses::new((0..5).map(|i| miss(100 + i, 0)).collect());
        let cfg = O3Config { cores: 2, window: 1, gap_scale_pct: 100 };
        let mut fe = O3Frontend::new(vec![a, b], cfg);
        let count = std::iter::from_fn(|| fe.next_miss()).count();
        assert_eq!(count, 6);
    }
}

//! In-order core front-end: drives a reference stream through the cache
//! hierarchy and yields the LLC miss stream.
//!
//! The paper's baseline CPU (Table I) is a single in-order Alpha core: it
//! blocks on every demand LLC miss, so the miss stream is strictly
//! sequential and each miss carries the compute/on-chip gap that preceded
//! it. Dirty LLC victims are emitted as non-blocking write misses
//! immediately before the demand miss that evicted them.

use std::collections::VecDeque;

use crate::hierarchy::{CacheHierarchy, HierarchyConfig};
use crate::stream::{MissRecord, MissStream, RefStream};

/// An in-order core: reference stream in, LLC misses out.
#[derive(Debug)]
pub struct InOrderCore<S> {
    refs: S,
    hierarchy: CacheHierarchy,
    pending: VecDeque<MissRecord>,
    refs_consumed: u64,
}

impl<S: RefStream> InOrderCore<S> {
    /// Creates a core over `refs` with the given cache hierarchy.
    pub fn new(refs: S, cfg: HierarchyConfig) -> Self {
        InOrderCore {
            refs,
            hierarchy: CacheHierarchy::new(cfg),
            pending: VecDeque::new(),
            refs_consumed: 0,
        }
    }

    /// Number of raw references consumed so far.
    pub fn refs_consumed(&self) -> u64 {
        self.refs_consumed
    }

    /// The underlying hierarchy (statistics access).
    pub fn hierarchy(&self) -> &CacheHierarchy {
        &self.hierarchy
    }
}

impl<S: RefStream> MissStream for InOrderCore<S> {
    fn next_miss(&mut self) -> Option<MissRecord> {
        if let Some(m) = self.pending.pop_front() {
            return Some(m);
        }
        loop {
            let r = self.refs.next_ref()?;
            self.refs_consumed += 1;
            let out = self.hierarchy.access(&r);
            if let Some(wb) = out.writeback {
                // Write-backs go to memory before the demand fill.
                self.pending.push_back(wb);
            }
            if let Some(miss) = out.demand_miss {
                self.pending.push_back(miss);
            }
            if let Some(first) = self.pending.pop_front() {
                return Some(first);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::MemRef;

    #[test]
    fn cold_stream_misses_everything() {
        let refs: Vec<MemRef> = (0..10u64).map(|a| MemRef::read(a * 1000, 2)).collect();
        let mut core = InOrderCore::new(refs.into_iter(), HierarchyConfig::small_test());
        let mut misses = Vec::new();
        while let Some(m) = core.next_miss() {
            misses.push(m);
        }
        assert_eq!(misses.len(), 10);
        assert!(misses.iter().all(|m| m.blocking));
        assert_eq!(core.refs_consumed(), 10);
    }

    #[test]
    fn hits_are_filtered_out() {
        let refs = vec![
            MemRef::read(1, 0),
            MemRef::read(1, 0), // hit
            MemRef::read(1, 0), // hit
            MemRef::read(9999, 0),
        ];
        let mut core = InOrderCore::new(refs.into_iter(), HierarchyConfig::small_test());
        let mut misses = Vec::new();
        while let Some(m) = core.next_miss() {
            misses.push(m.block_addr);
        }
        assert_eq!(misses, vec![1, 9999]);
    }

    #[test]
    fn gap_carries_hit_time() {
        let refs = vec![
            MemRef::read(1, 0),
            MemRef::read(1, 50), // L1 hit: 50 + 1 cycles
            MemRef::read(9999, 0),
        ];
        let mut core = InOrderCore::new(refs.into_iter(), HierarchyConfig::small_test());
        let _first = core.next_miss().unwrap();
        let second = core.next_miss().unwrap();
        assert_eq!(second.gap_cycles, 50 + 1 + 10);
    }

    #[test]
    fn writeback_precedes_demand_miss() {
        // Dirty block 0, then evict it via set-conflicting reads.
        let mut refs = vec![MemRef::write(0, 0)];
        for i in 1..=4u64 {
            refs.push(MemRef::read(i * 64, 0));
        }
        let mut core = InOrderCore::new(refs.into_iter(), HierarchyConfig::small_test());
        let mut all = Vec::new();
        while let Some(m) = core.next_miss() {
            all.push(m);
        }
        // Find the write-back of 0; it must appear and be non-blocking.
        let wb_pos = all
            .iter()
            .position(|m| m.block_addr == 0 && m.is_write && !m.blocking)
            .expect("write-back present");
        // The demand miss that caused it comes right after.
        assert!(wb_pos < all.len());
    }
}

//! The on-chip cache hierarchy (L1 data + unified L2/LLC) that converts a
//! memory-reference stream into the LLC miss stream driving the ORAM.
//!
//! Geometry and latencies follow Table I of the paper: 32 KB 2-way L1
//! (1-cycle), 1 MB 8-way L2 (10-cycle), 64-byte lines, LRU, write-back /
//! write-allocate. Dirty LLC victims become non-blocking write misses.


use crate::cache::{Cache, CacheAccess, CacheStats};
use crate::stream::{MemRef, MissRecord};

/// Hierarchy configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 data cache size in bytes.
    pub l1_bytes: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L1 hit latency in cycles.
    pub l1_latency: u32,
    /// L2 (LLC) size in bytes.
    pub l2_bytes: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L2 hit latency in cycles.
    pub l2_latency: u32,
}

impl HierarchyConfig {
    /// Table I: 32 KB / 2-way / 1-cycle L1; 1 MB / 8-way / 10-cycle L2.
    pub fn paper_table1() -> Self {
        HierarchyConfig {
            l1_bytes: 32 * 1024,
            l1_ways: 2,
            l1_latency: 1,
            l2_bytes: 1024 * 1024,
            l2_ways: 8,
            l2_latency: 10,
        }
    }

    /// A hierarchy scaled down to match scaled ORAM trees: when working
    /// sets are shrunk to fit a small tree, the LLC must shrink with them
    /// or every workload fits on chip and no misses reach the ORAM.
    /// Latencies stay at Table I values.
    pub fn scaled_small() -> Self {
        HierarchyConfig {
            l1_bytes: 4 * 1024,
            l1_ways: 2,
            l1_latency: 1,
            // Scaled so that hot working sets exceed the LLC the way SPEC
            // hot sets exceed the paper's 1 MB LLC — otherwise the ORAM
            // never sees the locality HD-Dup exploits.
            l2_bytes: 16 * 1024,
            l2_ways: 8,
            l2_latency: 10,
        }
    }

    /// A small hierarchy for unit tests (keeps miss streams interesting at
    /// tiny working sets).
    pub fn small_test() -> Self {
        HierarchyConfig {
            l1_bytes: 2 * 1024,
            l1_ways: 2,
            l1_latency: 1,
            l2_bytes: 16 * 1024,
            l2_ways: 4,
            l2_latency: 10,
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig::paper_table1()
    }
}

/// Outcome of pushing one reference through the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyOutcome {
    /// Cycles spent in the hierarchy if everything hit on chip (L1 or L2
    /// latency); meaningful only when `misses` is empty.
    pub on_chip_cycles: u32,
    /// Demand miss that must go to memory, if any.
    pub demand_miss: Option<MissRecord>,
    /// Dirty LLC victim to write back, if any (non-blocking).
    pub writeback: Option<MissRecord>,
}

/// The two-level hierarchy.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    cfg: HierarchyConfig,
    l1: Cache,
    l2: Cache,
    /// Cycles of pure compute + on-chip time accumulated since the last
    /// demand miss (becomes the next miss's `gap_cycles`).
    gap_accumulator: u64,
}

impl CacheHierarchy {
    /// Builds the hierarchy.
    pub fn new(cfg: HierarchyConfig) -> Self {
        CacheHierarchy {
            l1: Cache::new(cfg.l1_bytes, cfg.l1_ways),
            l2: Cache::new(cfg.l2_bytes, cfg.l2_ways),
            gap_accumulator: 0,
            cfg,
        }
    }

    /// L1 statistics.
    pub fn l1_stats(&self) -> CacheStats {
        self.l1.stats()
    }

    /// L2 (LLC) statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Pushes one reference through L1 then L2, accumulating on-chip time
    /// into the inter-miss gap and emitting a [`MissRecord`] when the LLC
    /// misses.
    pub fn access(&mut self, r: &MemRef) -> HierarchyOutcome {
        self.gap_accumulator += u64::from(r.gap_cycles);

        if self.l1.access(r.block_addr, r.is_write).is_hit() {
            self.gap_accumulator += u64::from(self.cfg.l1_latency);
            return HierarchyOutcome {
                on_chip_cycles: self.cfg.l1_latency,
                demand_miss: None,
                writeback: None,
            };
        }
        // L1 miss: consult L2. (L1 victims are clean w.r.t. memory: the
        // hierarchy is modeled inclusive with write-back at the LLC only,
        // so L1 dirty evictions update L2 silently.)
        match self.l2.access(r.block_addr, r.is_write) {
            CacheAccess::Hit => {
                self.gap_accumulator += u64::from(self.cfg.l2_latency);
                HierarchyOutcome {
                    on_chip_cycles: self.cfg.l2_latency,
                    demand_miss: None,
                    writeback: None,
                }
            }
            CacheAccess::Miss { writeback } => {
                let gap = self.gap_accumulator + u64::from(self.cfg.l2_latency);
                self.gap_accumulator = 0;
                HierarchyOutcome {
                    on_chip_cycles: self.cfg.l2_latency,
                    demand_miss: Some(MissRecord {
                        block_addr: r.block_addr,
                        is_write: r.is_write,
                        gap_cycles: gap,
                        blocking: true,
                    }),
                    writeback: writeback.map(|addr| MissRecord {
                        block_addr: addr,
                        is_write: true,
                        gap_cycles: 0,
                        blocking: false,
                    }),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hier() -> CacheHierarchy {
        CacheHierarchy::new(HierarchyConfig::small_test())
    }

    #[test]
    fn first_touch_misses_to_memory() {
        let mut h = hier();
        let out = h.access(&MemRef::read(1, 5));
        let m = out.demand_miss.expect("cold miss");
        assert_eq!(m.block_addr, 1);
        assert!(m.blocking);
        assert_eq!(m.gap_cycles, 5 + 10); // gap + L2 latency
    }

    #[test]
    fn repeat_access_hits_l1() {
        let mut h = hier();
        h.access(&MemRef::read(1, 0));
        let out = h.access(&MemRef::read(1, 0));
        assert!(out.demand_miss.is_none());
        assert_eq!(out.on_chip_cycles, 1);
    }

    #[test]
    fn gaps_accumulate_across_hits() {
        let mut h = hier();
        h.access(&MemRef::read(1, 0)); // miss, resets gap
        h.access(&MemRef::read(1, 7)); // L1 hit: 7 + 1 cycles accumulate
        let out = h.access(&MemRef::read(999, 3)); // miss
        let m = out.demand_miss.unwrap();
        assert_eq!(m.gap_cycles, 7 + 1 + 3 + 10);
    }

    #[test]
    fn l1_victim_still_hits_l2() {
        let mut h = hier();
        // Fill far beyond L1 (32 lines) but within L2 (256 lines).
        for a in 0..128u64 {
            h.access(&MemRef::read(a, 0));
        }
        // Address 0 is long gone from L1 but resident in L2.
        let out = h.access(&MemRef::read(0, 0));
        assert!(out.demand_miss.is_none());
        assert_eq!(out.on_chip_cycles, 10);
    }

    #[test]
    fn dirty_llc_victim_produces_nonblocking_writeback() {
        let mut h = hier();
        // Dirty a line, then stream enough conflicting lines through its
        // L2 set to evict it. small_test L2: 16 KB 4-way = 64 sets.
        h.access(&MemRef::write(0, 0));
        for i in 1..=4u64 {
            h.access(&MemRef::read(i * 64, 0)); // same L2 set as 0
        }
        // One of those misses must carry the write-back of block 0.
        let mut h2 = hier();
        h2.access(&MemRef::write(0, 0));
        let mut wb = None;
        for i in 1..=4u64 {
            let out = h2.access(&MemRef::read(i * 64, 0));
            if let Some(w) = out.writeback {
                wb = Some(w);
            }
        }
        let w = wb.expect("dirty victim written back");
        assert_eq!(w.block_addr, 0);
        assert!(w.is_write);
        assert!(!w.blocking);
    }

    #[test]
    fn llc_miss_rate_reflects_working_set() {
        let mut h = hier();
        // Working set of 512 lines (32 KB) overflows the 16 KB LLC.
        for round in 0..4 {
            for a in 0..512u64 {
                h.access(&MemRef::read(a, 0));
                let _ = round;
            }
        }
        assert!(h.l2_stats().miss_rate() > 0.5, "thrash expected");

        let mut h2 = hier();
        // 64-line working set fits everywhere after warmup.
        for _ in 0..4 {
            for a in 0..64u64 {
                h2.access(&MemRef::read(a, 0));
            }
        }
        assert!(h2.l2_stats().miss_rate() < 0.3, "small set should fit");
    }
}

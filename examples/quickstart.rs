//! Quickstart: build a Shadow-Block ORAM controller, issue requests
//! against it, and print what the optimization did.
//!
//! ```text
//! cargo run --release -p oram-sim --example quickstart
//! ```

use oram_protocol::{BlockAddr, DupPolicy, OramConfig, OramController, Request, ServedFrom};

fn main() -> Result<(), String> {
    // A small ORAM: 2^8 leaves, 4 slots per bucket, dynamic partitioning
    // with the paper's 3-bit DRI counter.
    let cfg = OramConfig::small_test()
        .with_levels(8)
        .with_dup_policy(DupPolicy::Dynamic { counter_bits: 3 });
    let mut oram = OramController::new(cfg)?;

    // Store some data.
    for i in 0..200u64 {
        oram.access(Request::write(BlockAddr::new(i), i * 100));
    }

    // Read it back — every value comes back intact even though blocks are
    // continuously re-encrypted, re-shuffled and duplicated.
    let mut onchip = 0u32;
    let mut advanced = 0u32;
    for i in 0..200u64 {
        let r = oram.access(Request::read(BlockAddr::new(i)));
        assert_eq!(r.value, i * 100, "ORAM must return what was written");
        match r.served {
            ServedFrom::Stash | ServedFrom::Treetop => onchip += 1,
            ServedFrom::Dram { via_shadow: true, .. } => advanced += 1,
            _ => {}
        }
    }

    let s = oram.stats();
    println!("200 reads: {onchip} served on-chip, {advanced} advanced by shadow copies");
    println!(
        "shadow blocks written so far: {} (RD) + {} (HD), mean DRAM serving position {:.1} of {}",
        s.rd_shadows_written,
        s.hd_shadows_written,
        s.mean_served_position(),
        oram.shape().blocks_per_path(),
    );
    println!(
        "stash high-water mark: {} live of {} capacity",
        oram.stash_stats().max_live,
        oram.config().stash_capacity,
    );
    oram.check_invariants()?;
    println!("all Path ORAM + shadow invariants hold");
    Ok(())
}

//! Timing protection in action: constant-rate ORAM requests with dummy
//! accesses, and how Shadow Block reduces the dummy tax (the paper's
//! Sec. VI-C scenario).
//!
//! Runs a bursty workload — long think times between clustered misses —
//! under a protected controller issuing one (real or dummy) request every
//! 800 cycles, with and without duplication.
//!
//! ```text
//! cargo run --release -p oram-sim --example timing_channel
//! ```

use oram_cpu::{MissRecord, ReplayMisses};
use oram_protocol::DupPolicy;
use oram_sim::{Engine, SystemConfig};

/// Bursts of dependent misses separated by long compute phases — the
/// pattern of Fig. 2: a long DRI invites dummy requests that advancing the
/// intended block can avoid.
fn bursty_trace(bursts: u64, burst_len: u64, ws: u64) -> Vec<MissRecord> {
    let regions = 24;
    let region_len = ws / regions;
    let mut out = Vec::new();
    for b in 0..bursts {
        // Bursts revisit a rotating set of regions, so blocks recur after
        // a few hundred misses — inside the survival window of their
        // shadow copies.
        let base = (b % regions) * region_len;
        for i in 0..burst_len {
            out.push(MissRecord {
                block_addr: base + (b / regions + i * 3) % region_len,
                is_write: false,
                gap_cycles: if i == 0 { 4_000 + (b % 5) * 800 } else { 180 },
                blocking: true,
            });
        }
    }
    out
}

fn run(policy: DupPolicy, trace: &[MissRecord], ws: u64) -> oram_sim::SimStats {
    let mut cfg = SystemConfig::scaled_default().with_timing_protection(800);
    cfg.oram.levels = 12;
    cfg.oram.dup_policy = policy;
    let mut engine = Engine::new(cfg).expect("valid configuration");
    engine.prefill_working_set(ws);
    engine.run(&mut ReplayMisses::new(trace.to_vec()))
}

fn main() {
    let ws = 6_000u64;
    let trace = bursty_trace(400, 8, ws);

    let tiny = run(DupPolicy::Off, &trace, ws);
    let shadow = run(DupPolicy::Dynamic { counter_bits: 3 }, &trace, ws);

    println!("timing-protected system, one request slot every 800 cycles:");
    for (name, s) in [("Tiny ORAM", &tiny), ("Shadow Block", &shadow)] {
        println!(
            "  {name:<12}: total {:>12} cycles | data {:>5.1}% | DRI {:>5.1}% | dummies {}",
            s.total_cycles,
            100.0 * s.data_fraction(),
            100.0 * s.dri_fraction(),
            s.dummy_requests,
        );
    }
    println!(
        "  dummy requests avoided: {}",
        tiny.dummy_requests.saturating_sub(shadow.dummy_requests)
    );
    println!(
        "  speedup: {:.3}x",
        tiny.total_cycles as f64 / shadow.total_cycles as f64
    );
    // The externally visible property: requests still leave the controller
    // at a constant rate — protection is intact, only the dummy share and
    // the total duration change.
    assert!(shadow.total_cycles <= tiny.total_cycles);
}

//! Sweeping the ORAM partitioning level and the DRI counter width on one
//! workload — a miniature of the paper's Figs. 9 and 10 that you can point
//! at any workload profile.
//!
//! ```text
//! cargo run --release -p oram-sim --example partition_tuning [workload]
//! ```

use oram_protocol::DupPolicy;
use oram_sim::{run_workload, RunOptions, SystemConfig};
use oram_workloads::spec;

fn main() {
    let wl = std::env::args().nth(1).unwrap_or_else(|| "hmmer".to_string());
    let profile = spec::profile(&wl);
    let opts = RunOptions { misses: 3000, warmup_misses: 800, seed: 7, fill_target: 0.35, o3: None };

    let mut base_cfg = SystemConfig::scaled_default().with_timing_protection(800);
    base_cfg.oram.levels = 12;
    let baseline = run_workload(&profile, &base_cfg, &opts);
    let base_total = baseline.oram.total_cycles as f64;
    println!("workload {wl}: Tiny ORAM total = {base_total:.0} cycles\n");

    println!("static partitioning sweep (levels >= P use RD-Dup, < P use HD-Dup):");
    let mut best = (0u32, f64::INFINITY);
    for p in (0..=12).step_by(2) {
        let mut cfg = base_cfg.clone();
        cfg.oram.dup_policy = DupPolicy::Static { partition_level: p };
        let r = run_workload(&profile, &cfg, &opts);
        let norm = r.oram.total_cycles as f64 / base_total;
        if norm < best.1 {
            best = (p, norm);
        }
        println!(
            "  P={p:>2}: total {norm:.4}  (data {:.2}, interval {:.2})",
            r.oram.data_fraction(),
            r.oram.dri_fraction()
        );
    }
    println!("  best static level: P={} at {:.4}\n", best.0, best.1);

    println!("dynamic partitioning, DRI counter width sweep:");
    for bits in 1..=8u32 {
        let mut cfg = base_cfg.clone();
        cfg.oram.dup_policy = DupPolicy::Dynamic { counter_bits: bits };
        let r = run_workload(&profile, &cfg, &opts);
        println!(
            "  {bits}-bit: total {:.4}",
            r.oram.total_cycles as f64 / base_total
        );
    }
}

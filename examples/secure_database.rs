//! A secure key-value store running over the full system simulator.
//!
//! The scenario the paper's introduction motivates: a private program (here
//! a small key-value store with a hot key set) runs on a secure processor
//! whose memory traffic must not leak its access pattern. We execute the
//! same query mix over the Tiny ORAM baseline and the Shadow Block
//! controller and report how much of the ORAM tax duplication recovers.
//!
//! ```text
//! cargo run --release -p oram-sim --example secure_database
//! ```

use oram_cpu::{MissRecord, ReplayMisses};
use oram_protocol::DupPolicy;
use oram_sim::{Engine, SystemConfig};

/// A toy query mix: 70% lookups of hot keys (Zipf-ish), 20% cold scans,
/// 10% updates. Each query touches one 64-byte record.
fn query_mix(n: u64, records: u64, hot: u64) -> Vec<MissRecord> {
    let mut x = 0x0123_4567_89AB_CDEFu64;
    let mut out = Vec::with_capacity(n as usize);
    for i in 0..n {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let (addr, is_write) = match x % 10 {
            0..=6 => (x % hot, false),            // hot lookup
            7 | 8 => (hot + (i % (records - hot)), false), // cold scan
            _ => (x % records, true),             // update
        };
        out.push(MissRecord {
            block_addr: addr,
            is_write,
            gap_cycles: 150 + (x % 300),
            blocking: !is_write,
        });
    }
    out
}

fn run(policy: DupPolicy, queries: &[MissRecord], records: u64) -> oram_sim::SimStats {
    let mut cfg = SystemConfig::scaled_default();
    cfg.oram.levels = 12;
    cfg.oram.dup_policy = policy;
    let mut engine = Engine::new(cfg).expect("valid configuration");
    engine.prefill_working_set(records);
    engine.run(&mut ReplayMisses::new(queries.to_vec()))
}

fn main() {
    let records = 8_000u64; // 8k × 64 B = a 512 KB table
    let hot = 300u64;
    let queries = query_mix(6_000, records, hot);

    let baseline = run(DupPolicy::Off, &queries, records);
    let shadow = run(DupPolicy::Dynamic { counter_bits: 3 }, &queries, records);

    println!("secure key-value store, {} queries over {} records:", queries.len(), records);
    println!(
        "  Tiny ORAM   : {:>12} cycles ({} ORAM requests, {} served on-chip)",
        baseline.total_cycles, baseline.data_requests, baseline.onchip_served
    );
    println!(
        "  Shadow Block: {:>12} cycles ({} ORAM requests, {} served on-chip)",
        shadow.total_cycles, shadow.data_requests, shadow.onchip_served
    );
    let speedup = baseline.total_cycles as f64 / shadow.total_cycles as f64;
    println!("  speedup from data duplication: {speedup:.3}x");
    println!(
        "  shadow copies advanced {} of {} DRAM-served queries",
        shadow.oram.shadow_advanced, shadow.oram.dram_served
    );
    assert!(
        shadow.total_cycles <= baseline.total_cycles,
        "duplication must not slow the store down"
    );
}
